/// \file bench_serving_hotpath.cpp
/// \brief Serving-path benchmark: loopback client-observed latency and
///        throughput with the hot-path machinery off vs on — buffer
///        pool reuse (allocations/request via pool counters) and
///        same-plan request batching (fused kernel sweeps).
///
/// Two runs over the same wire and the same hot plan:
///
///   unbatched  batch.max_batch = 1 (the executor's default path)
///   batched    batch.max_batch = B, gather window = D microseconds
///
/// Each run drives C concurrent connections through a real net::Server
/// (epoll reactor, HMMP frames, checksums — nothing mocked) and
/// reports client-side p50/p99/throughput plus the server's own
/// counters: fused batches executed, mean batch size, and buffer-pool
/// misses per request (the steady-state allocation rate; ~0 means the
/// pool is absorbing every per-request buffer).
///
/// The `sweep-seq-<variant>` / `sweep-fused-<variant>` rows re-run the
/// sweep comparison once per selectable kernel tier (scalar, avx2,
/// avx512 — whatever this CPU supports), so the committed trajectory
/// prices the SIMD gather/scatter kernels against the scalar oracle on
/// the same plan and lanes. Unsupported tiers are skipped, not failed.
///
/// The `srv-epoll-*` rows stress what the reactor specifically buys:
/// `srv-epoll-cNN` runs the batched wire workload at 4x the connection
/// count (a wider concurrent window feeds fuller same-plan batches),
/// and `srv-epoll-idle1k` runs the base batched workload while 1'000
/// idle connections are parked on the same server — idle connections
/// cost a map entry, not a thread, so the row should match the plain
/// wire-batched row (the thread-per-connection design could not open
/// them at all past its thread budget).
///
/// Usage: bench_serving_hotpath [--n 8K] [--connections 8]
///                              [--requests 200] [--batch 8]
///                              [--batch-delay-us 500]
///                              [--dist-n 1M] [--dist-shards 4]
///                              [--dist-requests 12] [--json]
///
/// `--json` appends one JSON object per row (JSON Lines) after the
/// table — the repo's BENCH_*.json trajectory format
/// (results/BENCH_serving.json keeps the committed baseline).

#include "bench_common.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/layout.hpp"
#include "core/permuter.hpp"
#include "cpu/dispatch.hpp"
#include "net/client.hpp"
#include "net/distributed.hpp"
#include "net/server.hpp"
#include "runtime/metrics.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/program.hpp"
#include "runtime/service.hpp"
#include "util/buffer_pool.hpp"
#include "util/rng.hpp"

namespace {

using namespace hmm;

/// Best-effort RLIMIT_NOFILE raise for the idle-connection row (each
/// parked connection is one client fd + one server fd).
bool raise_fd_limit(rlim_t want) {
  struct rlimit lim {};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return false;
  if (lim.rlim_cur >= want) return true;
  if (lim.rlim_max != RLIM_INFINITY && lim.rlim_max < want) return false;
  lim.rlim_cur = want;
  return setrlimit(RLIMIT_NOFILE, &lim) == 0;
}

struct RunResult {
  double wall_s = 0;
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  runtime::LogHistogram latency_ns;
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  std::uint64_t pool_misses = 0;  // delta across the measured window
};

/// One full loopback run: fresh service + server, one hot plan, C
/// client threads each issuing R PERMUTEs. The pool-miss delta is
/// captured after a warmup pass so it reflects steady state, not
/// first-touch growth. `idle_conns` connections are opened before the
/// measured window and left parked (never written to) for its whole
/// duration — the reactor must carry them for free.
void run_once(const perm::Permutation& p, std::uint64_t n, std::uint64_t connections,
              std::uint64_t requests_per_conn, std::uint32_t batch_max,
              std::chrono::microseconds batch_delay, RunResult& result,
              std::uint64_t idle_conns = 0) {
  auto& pool = util::ThreadPool::global();
  runtime::RobustPermuteService::Config config;
  if (batch_max > 1) {
    config.executor.batch.max_batch = batch_max;
    config.executor.batch.max_delay = batch_delay;
  }
  runtime::RobustPermuteService service(pool, config);
  net::Server::Config server_config;
  server_config.max_connections =
      static_cast<std::uint32_t>(std::max<std::uint64_t>(256, idle_conns + connections + 16));
  net::Server server(service, server_config);
  if (runtime::Status s = server.start(); !s.is_ok()) {
    std::cerr << "bench_serving_hotpath: " << s.to_string() << "\n";
    std::exit(1);
  }

  net::Client::Config client_config;
  client_config.port = server.port();

  std::vector<net::TcpStream> parked;
  parked.reserve(idle_conns);
  for (std::uint64_t i = 0; i < idle_conns; ++i) {
    runtime::StatusOr<net::TcpStream> conn =
        net::tcp_connect("127.0.0.1", server.port(), std::chrono::milliseconds(2'000));
    if (!conn.ok()) {
      std::cerr << "bench_serving_hotpath: idle connection " << i
                << " failed: " << conn.status().to_string() << "\n";
      std::exit(1);
    }
    parked.push_back(std::move(conn).value());
  }

  std::uint64_t plan_id = 0;
  {
    net::Client setup(client_config);
    runtime::StatusOr<std::uint64_t> id = setup.submit_plan(p);
    if (!id.ok()) {
      std::cerr << "bench_serving_hotpath: SUBMIT_PLAN failed: " << id.status().to_string()
                << "\n";
      std::exit(1);
    }
    plan_id = id.value();
    // Warmup: populate the plan cache, the pool's size classes, and the
    // connection-level frame storage before the measured window.
    std::vector<std::uint32_t> a(n), b(n);
    for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i);
    for (int i = 0; i < 8; ++i) {
      (void)setup.permute(plan_id, {a.data(), n}, {b.data(), n});
    }
  }

  const runtime::MetricsSnapshot before = service.metrics().snapshot();
  std::atomic<std::uint64_t> failures{0};
  util::Stopwatch wall;

  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (std::uint64_t w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      net::Client client(client_config);
      std::vector<std::uint32_t> a(n), b(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        a[i] = static_cast<std::uint32_t>(i + w * 1315423911u);
      }
      for (std::uint64_t r = 0; r < requests_per_conn; ++r) {
        util::Stopwatch sw;
        const runtime::Status s = client.permute(plan_id, {a.data(), n}, {b.data(), n});
        result.latency_ns.record(static_cast<std::uint64_t>(sw.nanos()));
        if (!s.is_ok()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  result.wall_s = wall.millis() / 1e3;
  result.requests = connections * requests_per_conn;
  result.failures = failures.load();
  const runtime::MetricsSnapshot after = service.metrics().snapshot();
  result.batches = after.batches_executed - before.batches_executed;
  result.batched_requests = after.batched_requests - before.batched_requests;
  result.pool_misses = after.pool_misses - before.pool_misses;
  server.stop();
}

/// Sweep-level run: the fused five-pass kernel sequence against L
/// sequential single-lane sweeps — the batching lemma's amortization
/// (schedule arrays read once per quad of lanes instead of once per
/// request) with no serving machinery at all. Both modes run over the
/// SAME compiled plan and the same lane buffers, in alternating timed
/// windows, so allocation/alignment luck and machine noise hit both
/// sides equally; each side keeps its best window.
void run_sweep(const perm::Permutation& p, std::uint64_t n, std::uint64_t lanes,
               RunResult& sequential, RunResult& fused) {
  auto& pool = util::ThreadPool::global();
  runtime::PlanCache cache({}, nullptr);
  auto h = cache.acquire<std::uint32_t>(p, model::MachineParams::gtx680(),
                                        core::Strategy::kScheduled);
  std::vector<util::aligned_vector<std::uint32_t>> as(lanes), bs(lanes), ss(lanes);
  for (auto* group : {&as, &bs, &ss}) {
    for (auto& v : *group) v.resize(n);
  }
  for (std::uint64_t l = 0; l < lanes; ++l) {
    for (std::uint64_t i = 0; i < n; ++i) as[l][i] = static_cast<std::uint32_t>(i + l);
  }
  std::vector<core::BatchLane<std::uint32_t>> lane_views(lanes);
  for (std::uint64_t l = 0; l < lanes; ++l) {
    lane_views[l].a = {as[l].data(), n};
    lane_views[l].b = {bs[l].data(), n};
    lane_views[l].scratch = {ss[l].data(), n};
  }
  const auto sweep_sequential = [&] {
    for (std::uint64_t l = 0; l < lanes; ++l) {
      core::scheduled_cpu_lean<std::uint32_t>(pool, *h->plan(), {as[l].data(), n},
                                              {bs[l].data(), n}, {ss[l].data(), n});
    }
  };
  const auto sweep_fused = [&] {
    for (auto& lane : lane_views) lane.active = true;
    core::scheduled_cpu_lean_batched<std::uint32_t>(
        pool, *h->plan(), {lane_views.data(), lane_views.size()}, nullptr);
  };
  // One warm pass of each keeps first-touch page faults out of the
  // windows; the best of several short alternating windows filters
  // scheduler noise (a window is milliseconds, so any preemption
  // swamps it — the min is the unpreempted run).
  sweep_sequential();
  sweep_fused();
  const int reps = 25;
  const int windows = 6;
  double best_seq_s = 1e30;
  double best_fused_s = 1e30;
  for (int w = 0; w < windows; ++w) {
    util::Stopwatch seq_wall;
    for (int r = 0; r < reps; ++r) sweep_sequential();
    best_seq_s = std::min(best_seq_s, seq_wall.millis() / 1e3);
    util::Stopwatch fused_wall;
    for (int r = 0; r < reps; ++r) sweep_fused();
    best_fused_s = std::min(best_fused_s, fused_wall.millis() / 1e3);
  }
  sequential.wall_s = best_seq_s;
  sequential.requests = static_cast<std::uint64_t>(reps) * lanes;
  fused.wall_s = best_fused_s;
  fused.requests = sequential.requests;
  fused.batches = reps;
  fused.batched_requests = fused.requests;
  for (RunResult* result : {&sequential, &fused}) {
    const std::uint64_t per_request_ns = static_cast<std::uint64_t>(
        result->wall_s * 1e9 / static_cast<double>(result->requests));
    for (std::uint64_t i = 0; i < result->requests; ++i) {
      result->latency_ns.record(per_request_ns);
    }
  }
}

/// Program-fusion run: one depth-k chain of registered random plans,
/// applied to every request, served two ways over the same loopback
/// wire — one EXECUTE_PROGRAM round trip (the service fuses the chain
/// into a single composite plan) vs k sequential PERMUTE round trips,
/// each feeding the previous response back in (what a client without
/// the PROGRAM op chain is forced to do). A "request" in both rows is
/// one whole chain, so req/s compares like with like and the latency
/// histogram records chain completion time.
void run_program_compare(std::uint64_t n, std::uint64_t depth, std::uint64_t connections,
                         std::uint64_t requests_per_conn, RunResult& fused,
                         RunResult& sequential) {
  auto& pool = util::ThreadPool::global();
  runtime::RobustPermuteService service(pool, {});
  net::Server server(service, {});
  if (runtime::Status s = server.start(); !s.is_ok()) {
    std::cerr << "bench_serving_hotpath: " << s.to_string() << "\n";
    std::exit(1);
  }
  net::Client::Config client_config;
  client_config.port = server.port();

  std::vector<std::uint64_t> plan_ids(depth);
  std::vector<runtime::ProgramOp> ops(depth);
  {
    net::Client setup(client_config);
    util::Xoshiro256 rng(2026);
    for (std::uint64_t d = 0; d < depth; ++d) {
      runtime::StatusOr<std::uint64_t> id = setup.submit_plan(perm::random(n, rng));
      if (!id.ok()) {
        std::cerr << "bench_serving_hotpath: SUBMIT_PLAN failed: " << id.status().to_string()
                  << "\n";
        std::exit(1);
      }
      plan_ids[d] = id.value();
      ops[d] = {runtime::ProgramOpCode::kPermute, plan_ids[d]};
    }
    // Warmup compiles the composite once (and each stage plan for the
    // sequential side), so both measured windows run on a hot cache.
    std::vector<std::uint32_t> a(n), b(n);
    for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i);
    for (int i = 0; i < 4; ++i) {
      (void)setup.execute_program({ops.data(), ops.size()}, {a.data(), n}, {b.data(), n});
      for (std::uint64_t d = 0; d < depth; ++d) {
        (void)setup.permute(plan_ids[d], {a.data(), n}, {b.data(), n});
      }
    }
  }

  const auto run_mode = [&](bool use_program, RunResult& result) {
    std::atomic<std::uint64_t> failures{0};
    util::Stopwatch wall;
    std::vector<std::thread> workers;
    workers.reserve(connections);
    for (std::uint64_t w = 0; w < connections; ++w) {
      workers.emplace_back([&, w] {
        net::Client client(client_config);
        std::vector<std::uint32_t> a(n), b(n);
        for (std::uint64_t i = 0; i < n; ++i) {
          a[i] = static_cast<std::uint32_t>(i + w * 1315423911u);
        }
        for (std::uint64_t r = 0; r < requests_per_conn; ++r) {
          util::Stopwatch sw;
          bool ok = true;
          if (use_program) {
            ok = client
                     .execute_program({ops.data(), ops.size()}, {a.data(), n}, {b.data(), n})
                     .is_ok();
          } else {
            // k round trips, each feeding the next: the response lands
            // in b, then becomes the next request's input.
            std::span<const std::uint32_t> src{a.data(), n};
            for (std::uint64_t d = 0; d < depth && ok; ++d) {
              ok = client.permute(plan_ids[d], src, {b.data(), n}).is_ok();
              src = {b.data(), n};
            }
          }
          result.latency_ns.record(static_cast<std::uint64_t>(sw.nanos()));
          if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : workers) t.join();
    result.wall_s = wall.millis() / 1e3;
    result.requests = connections * requests_per_conn;
    result.failures = failures.load();
  };

  run_mode(false, sequential);
  run_mode(true, fused);
  server.stop();
}

/// Distributed-vs-single comparison over the same plan and data: one
/// row drives plain PERMUTEs at a single shard, the others fan the same
/// request out as SHARD_EXEC row bands across S in-process shards (the
/// peer-to-peer column exchange included). On one machine over loopback
/// this measures the sharding *overhead* — the exchange's extra wire
/// hops — not a speedup; the row exists so the trajectory catches
/// regressions in the distributed path's constant factors.
void run_distributed_compare(std::uint64_t n, std::uint32_t shard_count,
                             std::uint64_t requests, RunResult& single, RunResult& dist) {
  auto& pool = util::ThreadPool::global();
  const perm::Permutation p = perm::by_name("random", n, 2026);
  const core::MatrixShape shape = core::shape_for(n, 32);

  std::vector<std::unique_ptr<runtime::RobustPermuteService>> services;
  std::vector<std::unique_ptr<net::Server>> servers;
  std::vector<net::ShardTarget> targets;
  std::uint64_t plan_id = 0;
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    services.push_back(std::make_unique<runtime::RobustPermuteService>(
        pool, runtime::RobustPermuteService::Config{}));
    servers.push_back(std::make_unique<net::Server>(*services.back(), net::Server::Config{}));
    if (runtime::Status st = servers.back()->start(); !st.is_ok()) {
      std::cerr << "bench_serving_hotpath: " << st.to_string() << "\n";
      std::exit(1);
    }
    net::Client::Config cc;
    cc.port = servers.back()->port();
    net::Client setup(cc);
    runtime::StatusOr<std::uint64_t> id = setup.submit_plan(p);
    if (!id.ok()) {
      std::cerr << "bench_serving_hotpath: SUBMIT_PLAN failed: " << id.status().to_string()
                << "\n";
      std::exit(1);
    }
    plan_id = id.value();
    targets.push_back(net::ShardTarget{"127.0.0.1", servers.back()->port(), s});
  }

  std::vector<std::uint32_t> a(n), b(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i * 2654435761u);

  // Single-node row against shard 0 (warmup compiles the plan there).
  {
    net::Client::Config cc;
    cc.port = servers[0]->port();
    net::Client client(cc);
    for (int i = 0; i < 2; ++i) (void)client.permute(plan_id, {a.data(), n}, {b.data(), n});
    util::Stopwatch wall;
    for (std::uint64_t r = 0; r < requests; ++r) {
      util::Stopwatch sw;
      if (!client.permute(plan_id, {a.data(), n}, {b.data(), n}).is_ok()) single.failures++;
      single.latency_ns.record(static_cast<std::uint64_t>(sw.nanos()));
    }
    single.wall_s = wall.millis() / 1e3;
    single.requests = requests;
  }

  // Distributed row: same data, fanned out as row bands.
  net::DistributedPermuter::Config config;
  config.max_payload_bytes = net::kDefaultMaxPayload;
  config.io_timeout = std::chrono::milliseconds(120'000);
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(a.data()), n * sizeof(std::uint32_t));
  const auto fire = [&](std::uint64_t session) {
    return net::DistributedPermuter::execute(config, session, plan_id, 0, shape.rows,
                                             shape.cols, bytes, targets, [](std::size_t) {});
  };
  if (auto warm = fire(0xbe9c0000u); !warm.ok()) {
    std::cerr << "bench_serving_hotpath: distributed warmup failed: "
              << warm.status().to_string() << "\n";
    std::exit(1);
  }
  util::Stopwatch wall;
  for (std::uint64_t r = 0; r < requests; ++r) {
    util::Stopwatch sw;
    auto result = fire(0xbe9c1000u + r);
    dist.latency_ns.record(static_cast<std::uint64_t>(sw.nanos()));
    if (!result.ok()) dist.failures++;
  }
  dist.wall_s = wall.millis() / 1e3;
  dist.requests = requests;

  for (auto& server : servers) server->stop();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"n", "connections", "requests", "batch", "batch-delay-us",
                         "program-depth", "dist-n", "dist-shards", "dist-requests", "json"},
                        std::cerr)) {
    return 2;
  }
  const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 8 << 10));
  const std::uint64_t connections = static_cast<std::uint64_t>(cli.get_int("connections", 8));
  const std::uint64_t requests = static_cast<std::uint64_t>(cli.get_int("requests", 200));
  const auto batch_max = static_cast<std::uint32_t>(cli.get_int("batch", 8));
  const auto batch_delay = std::chrono::microseconds(cli.get_int("batch-delay-us", 500));
  const auto program_depth = static_cast<std::uint64_t>(cli.get_int("program-depth", 4));
  const std::uint64_t dist_n = static_cast<std::uint64_t>(cli.get_int("dist-n", 1 << 20));
  const auto dist_shards = static_cast<std::uint32_t>(cli.get_int("dist-shards", 4));
  const std::uint64_t dist_requests =
      static_cast<std::uint64_t>(cli.get_int("dist-requests", 12));
  const bool json = cli.get_bool("json");
  if (program_depth < 1 || program_depth > runtime::kMaxProgramOps) {
    std::cerr << "bench_serving_hotpath: --program-depth must be in [1, "
              << runtime::kMaxProgramOps << "]\n";
    return 2;
  }

  if (!util::is_pow2(n) || n < 64) {
    std::cerr << "bench_serving_hotpath: --n must be a power of two >= 64\n";
    return 2;
  }

  bench::print_header("Serving hot path: pooled buffers + same-plan batching",
                      "loopback HMMP, client-observed");
  net::ignore_sigpipe();

  const perm::Permutation p = perm::by_name("bit-reversal", n, 42);

  util::Table table({"mode", "conns", "reqs", "req/s", "p50 ms", "p99 ms", "miss/req",
                     "batches", "mean batch"});
  double unbatched_rps = 0, batched_rps = 0;
  const auto add = [&](const char* mode, const RunResult& r,
                       std::uint64_t conns = 0) {
    if (conns == 0) conns = connections;
    const double rps = static_cast<double>(r.requests) / r.wall_s;
    const double mean_batch =
        r.batches == 0 ? 1.0
                       : static_cast<double>(r.batched_requests) / static_cast<double>(r.batches);
    table.add_row({mode, util::format_count(conns), util::format_count(r.requests),
                   util::format_double(rps, 1),
                   util::format_ms(static_cast<double>(r.latency_ns.quantile(0.5)) / 1e6),
                   util::format_ms(static_cast<double>(r.latency_ns.quantile(0.99)) / 1e6),
                   util::format_double(static_cast<double>(r.pool_misses) /
                                           static_cast<double>(r.requests),
                                       3),
                   util::format_count(r.batches), util::format_double(mean_batch, 2)});
    if (r.failures != 0) {
      std::cerr << "bench_serving_hotpath: " << r.failures << " request(s) failed in '" << mode
                << "'\n";
      std::exit(1);
    }
    return rps;
  };

  RunResult unbatched, batched, sweep_unbatched, sweep_batched;
  const std::uint64_t sweep_lanes = std::max<std::uint64_t>(4, batch_max);
  run_sweep(p, n, sweep_lanes, sweep_unbatched, sweep_batched);
  const double sweep_unbatched_rps = add("sweep-unbatched", sweep_unbatched);
  const double sweep_batched_rps = add("sweep-batched", sweep_batched);

  // Per-kernel-tier sweep rows: the same plan and lanes, forced through
  // each selectable variant. The scalar rows are the oracle baseline the
  // SIMD tiers are measured against; tiers this CPU cannot run are
  // skipped (set_kernel_variant clamps the request downward).
  double scalar_fused_rps = 0, best_simd_fused_rps = 0;
  {
    const cpu::KernelVariant prev = cpu::kernel_variant();
    for (const cpu::KernelVariant v : {cpu::KernelVariant::kScalar, cpu::KernelVariant::kAvx2,
                                       cpu::KernelVariant::kAvx512}) {
      if (cpu::set_kernel_variant(v) != v) continue;
      RunResult seq, fused;
      run_sweep(p, n, sweep_lanes, seq, fused);
      const std::string name(cpu::to_string(v));
      const double seq_rps = add(("sweep-seq-" + name).c_str(), seq);
      const double fused_rps = add(("sweep-fused-" + name).c_str(), fused);
      (void)seq_rps;
      if (v == cpu::KernelVariant::kScalar) {
        scalar_fused_rps = fused_rps;
      } else {
        best_simd_fused_rps = std::max(best_simd_fused_rps, fused_rps);
      }
    }
    (void)cpu::set_kernel_variant(prev);
  }

  run_once(p, n, connections, requests, 1, batch_delay, unbatched);
  unbatched_rps = add("wire-unbatched", unbatched);
  run_once(p, n, connections, requests, batch_max, batch_delay, batched);
  batched_rps = add("wire-batched", batched);

  // Reactor-specific rows: a 4x-wide concurrent window (fuller
  // same-plan batches) and the base batched workload with 1'000 idle
  // connections parked on the same server.
  const std::uint64_t wide_conns = connections * 4;
  RunResult epoll_wide, epoll_idle;
  run_once(p, n, wide_conns, requests, batch_max, batch_delay, epoll_wide);
  const std::string wide_label = "srv-epoll-c" + std::to_string(wide_conns);
  add(wide_label.c_str(), epoll_wide, wide_conns);
  const bool idle_row = raise_fd_limit(4096);
  if (idle_row) {
    run_once(p, n, connections, requests, batch_max, batch_delay, epoll_idle, 1'000);
    add("srv-epoll-idle1k", epoll_idle);
  } else {
    std::cerr << "bench_serving_hotpath: RLIMIT_NOFILE too low for the "
                 "srv-epoll-idle1k row; skipping it\n";
  }

  RunResult program_fused, program_sequential;
  run_program_compare(n, program_depth, connections, requests, program_fused,
                      program_sequential);
  const std::string seq_label = "chain-" + std::to_string(program_depth) + "x-roundtrip";
  const double program_seq_rps = add(seq_label.c_str(), program_sequential);
  const double program_fused_rps = add("chain-program-fused", program_fused);

  RunResult dist_single, dist_sharded;
  run_distributed_compare(dist_n, dist_shards, dist_requests, dist_single, dist_sharded);
  const double dist_single_rps = add("dist-single", dist_single);
  const std::string dist_label = "dist-" + std::to_string(dist_shards) + "shard";
  const double dist_sharded_rps = add(dist_label.c_str(), dist_sharded);

  table.print(std::cout);
  std::cout << "\nwire batched/unbatched: " << util::format_double(batched_rps / unbatched_rps, 2)
            << "x    fused-sweep speedup: "
            << util::format_double(sweep_batched_rps / sweep_unbatched_rps, 2)
            << "x at batch " << sweep_lanes;
  if (scalar_fused_rps > 0 && best_simd_fused_rps > 0) {
    std::cout << "    simd/scalar fused sweep: "
              << util::format_double(best_simd_fused_rps / scalar_fused_rps, 2)
              << "x (best tier vs scalar oracle)";
  }
  std::cout << "    program fusion speedup: "
            << util::format_double(program_fused_rps / program_seq_rps, 2) << "x at depth "
            << program_depth
            << "\n'sweep' rows compare the fused five-pass kernel sequence against\n"
               "the same lanes swept sequentially — the schedule-read amortization\n"
               "batching buys. The 'wire' rows carry the full per-request framing,\n"
               "checksum, and syscall cost, which batching cannot remove (and which\n"
               "dominates loopback on few-core hosts). 'miss/req' ~ 0 means the\n"
               "buffer pool absorbs every per-request allocation; 'mean batch' is\n"
               "requests per fused sweep. The 'chain' rows serve one depth-k\n"
               "permutation chain per request: k PERMUTE round trips (each feeding\n"
               "the next) vs one EXECUTE_PROGRAM the service fuses into a single\n"
               "composite plan — k kernel sweeps, k wire copies, and k-1 round\n"
               "trips collapse into one of each. 'sweep-seq/fused-<variant>' rows\n"
               "force one kernel tier (HMM_KERNEL_VARIANT equivalent) per pair;\n"
               "tiers the CPU cannot run are absent, not zero.\n"
            << "distributed " << dist_shards << "-shard/single: "
            << util::format_double(dist_sharded_rps / dist_single_rps, 2) << "x at n="
            << util::format_count(dist_n)
            << " — 'dist' rows run the same request single-node vs sharded into row\n"
               "bands with the peer-to-peer column exchange; on one loopback host\n"
               "this prices the exchange overhead (the win is capacity: each shard\n"
               "holds and permutes only its band).\n"
               "'srv-epoll-*' rows are reactor-specific: the cNN row widens the\n"
               "concurrent window (fuller same-plan batches), the idle1k row parks\n"
               "1'000 idle connections alongside the batched workload — both were\n"
               "impossible under thread-per-connection.\n";
  if (json) {
    std::cout << "\n";
    table.print_json_rows(std::cout, "\"bench\":\"serving_hotpath\"");
  }
  return 0;
}
