/// \file bench_machine_sweep.cpp
/// \brief Design-space sweep: where does the scheduled algorithm win as
///        the machine changes? The paper evaluates one GPU (w=32, d=8);
///        the closed forms answer the question for any (w, l, d) —
///        including the modern-GPU direction (more SMs, longer
///        latencies) and the narrow-SIMD direction where the 16-round
///        constant can never pay.
///
/// The break-even condition (docs/MODEL.md §5): scheduled beats the
/// worst-case conventional iff 14/w + 16/(dw) < 1.
///
/// Usage: bench_machine_sweep [--n 4M] [--csv]

#include "bench_common.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "n"}, std::cerr)) return 2;
  const std::uint64_t n = cli.get_int("n", 4096ull << 10);
  const bool csv = cli.get_bool("csv");

  bench::print_header("Design-space sweep — scheduled vs conventional across machines",
                      "Theorem 9 / Lemma 4 asymptotics");
  std::cout << "n = " << bench::size_label(n)
            << ", worst-case distribution d_w(P) = n (bit-reversal-like).\n"
               "Break-even: 14/w + 16/(dw) < 1.\n\n";

  util::Table table({"width", "dmms", "latency", "conventional", "scheduled", "speedup",
                     "winner"});
  for (std::uint32_t w : {8u, 16u, 32u, 64u}) {
    for (std::uint32_t d : {1u, 8u, 64u}) {
      for (std::uint32_t l : {100u, 300u, 1000u}) {
        model::MachineParams mp;
        mp.width = w;
        mp.dmms = d;
        mp.latency = l;
        mp.shared_bytes = 256 * 1024;
        const std::uint64_t conv = model::d_designated_time(n, n, mp);
        const std::uint64_t sched = model::scheduled_time(n, mp);
        table.add_row({util::format_count(w), util::format_count(d), util::format_count(l),
                       util::format_count(conv), util::format_count(sched),
                       util::format_double(static_cast<double>(conv) /
                                               static_cast<double>(sched),
                                           2) +
                           "x",
                       sched < conv ? "scheduled" : "conventional"});
      }
      table.add_separator();
    }
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout
      << "\nReading: width is everything. At w=8/16 the 16-round pipeline can never\n"
         "amortize (14/w > 0.8); at w=32 (the paper's GPU) it wins ~1.9x; at w=64\n"
         "(modern warps x wider groups) ~3.5x. More DMMs help only the shared term;\n"
         "latency shifts nothing asymptotically — it cancels between the algorithms.\n";
  return 0;
}
