/// \file bench_shared_permutation.cpp
/// \brief Reproduces the prior-work experiment the paper builds on
///        (Section I, refs [8]/[9]): conflict-free offline permutation
///        on ONE DMM's shared memory vs the conventional bank-conflicted
///        one. The paper quotes 246ns vs 165ns (1.5x) for a random
///        permutation of 1024 floats on one GTX-680 SM.
///
/// Usage: bench_shared_permutation [--n 1024] [--samples 20] [--csv]

#include "bench_common.hpp"

#include <iostream>

#include "core/shared_permute.hpp"

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "n", "samples"}, std::cerr)) return 2;
  const std::uint64_t n = cli.get_int("n", 1024);
  const int samples = static_cast<int>(cli.get_int("samples", 20));
  const bool csv = cli.get_bool("csv");

  bench::print_header("Shared-memory (single-DMM) permutation: conflict-free vs conventional",
                      "Section I prior work [8], [9]");
  const model::MachineParams mp{
      .width = 32, .latency = 1, .dmms = 1, .shared_bytes = 48 * 1024};
  std::cout << "n = " << n << " elements on one DMM (w=" << mp.width
            << "); paper hardware: 246ns conventional vs 165ns conflict-free (1.5x).\n\n";

  util::Table table({"permutation", "conv stages", "cf stages", "speedup",
                     "conv time", "cf time"});
  auto run_one = [&](const std::string& name, const perm::Permutation& p) {
    sim::HmmSim conv(mp);
    const std::uint64_t t_conv = core::shared_conventional_sim_rounds(conv, p);
    const core::SharedPermutation sp(p, mp.width);
    sim::HmmSim cf(mp);
    const std::uint64_t t_cf = sp.sim_rounds(cf);
    table.add_row({name, util::format_count(core::bank_conflict_stages(p, mp.width)),
                   util::format_count(2 * n / mp.width),
                   util::format_double(static_cast<double>(t_conv) /
                                           static_cast<double>(t_cf),
                                       2) +
                       "x",
                   util::format_count(t_conv), util::format_count(t_cf)});
  };

  for (const auto& name : bench::paper_families()) {
    run_one(name, perm::by_name(name, n, 42));
  }
  table.add_separator();

  // Random-sample statistics (the paper's experiment).
  double min_speedup = 1e9, sum = 0, max_speedup = 0;
  for (int s = 0; s < samples; ++s) {
    const perm::Permutation p = perm::by_name("random", n, 300 + s);
    sim::HmmSim conv(mp);
    const auto t_conv = core::shared_conventional_sim_rounds(conv, p);
    const core::SharedPermutation sp(p, mp.width);
    sim::HmmSim cf(mp);
    const auto t_cf = sp.sim_rounds(cf);
    const double sp_ratio = static_cast<double>(t_conv) / static_cast<double>(t_cf);
    min_speedup = std::min(min_speedup, sp_ratio);
    max_speedup = std::max(max_speedup, sp_ratio);
    sum += sp_ratio;
  }
  table.add_row({"random x" + std::to_string(samples) + " (min/avg/max)", "", "",
                 util::format_double(min_speedup, 2) + "/" +
                     util::format_double(sum / samples, 2) + "/" +
                     util::format_double(max_speedup, 2) + "x",
                 "", ""});
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nModel note: random 32-thread warps over 32 banks average ~"
            << util::format_double(sum / samples, 2)
            << "x conflict serialization — the paper's measured 1.5x sits inside the\n"
               "band once fixed kernel overheads are added on real silicon.\n";
  return 0;
}
