/// \file bench_ablation_omega.cpp
/// \brief Ablation of the MMU idealization: the DMM/UMM model charges a
///        conflict-free warp ONE pipeline stage — implicitly a full
///        crossbar. The paper's own architectural remark points at a
///        multistage interconnection network instead; a real omega
///        network BLOCKS on most permutations even when banks are
///        distinct. This bench measures the gap: passes needed per warp
///        pattern, for the paper's families and for the scheduled
///        algorithm's actual conflict-free schedules.
///
/// Usage: bench_ablation_omega [--width 32] [--samples 200] [--csv]

#include "bench_common.hpp"

#include <iostream>

#include "core/row_schedule.hpp"
#include "sim/omega.hpp"

namespace {

using namespace hmm;

/// Average passes the omega network needs over every warp of a
/// permutation's bank pattern (dest bank = P(i) mod w per warp of w).
double average_passes(const sim::OmegaNetwork& net, const perm::Permutation& p) {
  const std::uint32_t w = net.width();
  std::vector<std::uint64_t> dest(w);
  std::uint64_t total = 0;
  const std::uint64_t warps = p.size() / w;
  for (std::uint64_t warp = 0; warp < warps; ++warp) {
    for (std::uint32_t k = 0; k < w; ++k) dest[k] = p(warp * w + k) % w;
    total += net.route(dest).passes;
  }
  return static_cast<double>(total) / static_cast<double>(warps);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "samples", "width"}, std::cerr)) return 2;
  const auto width = static_cast<std::uint32_t>(cli.get_int("width", 32));
  const int samples = static_cast<int>(cli.get_int("samples", 200));
  const bool csv = cli.get_bool("csv");

  bench::print_header("Ablation — crossbar MMU vs a blocking omega network",
                      "Section I architectural remark (multistage interconnection)");
  sim::OmegaNetwork net(width);
  std::cout << "omega network: " << width << " ports, " << net.stages()
            << " stages of 2x2 switches; the abstract model charges every\n"
               "bank-distinct warp 1 stage (crossbar assumption).\n\n";

  util::Table table({"warp pattern", "avg passes", "vs crossbar", "note"});
  const std::uint64_t n = 4096;
  for (const auto& name : bench::paper_families()) {
    const perm::Permutation p = perm::by_name(name, n, 42);
    const double passes = average_passes(net, p);
    table.add_row({name + " (bank pattern)", util::format_double(passes, 2),
                   util::format_double(passes, 2) + "x",
                   passes <= 1.01 ? "omega-routable" : "blocks"});
  }

  // Random bank-distinct warps: the pattern class the scheduled
  // algorithm's König schedules produce (all banks distinct).
  {
    util::Xoshiro256 rng(7);
    double total = 0;
    std::uint32_t one_pass = 0;
    std::vector<std::uint64_t> dest(width);
    for (int s = 0; s < samples; ++s) {
      const perm::Permutation p = perm::random(width, rng);
      for (std::uint32_t k = 0; k < width; ++k) dest[k] = p(k);
      const auto r = net.route(dest);
      total += r.passes;
      one_pass += (r.passes == 1);
    }
    table.add_separator();
    table.add_row({"random bank-distinct warps", util::format_double(total / samples, 2),
                   util::format_double(total / samples, 2) + "x",
                   util::format_double(100.0 * one_pass / samples, 1) +
                       "% omega-routable"});
  }

  // The scheduled algorithm's actual conflict-free schedule warps.
  {
    util::Xoshiro256 rng(9);
    std::vector<std::uint16_t> g(1024);
    for (std::uint64_t j = 0; j < g.size(); ++j) g[j] = static_cast<std::uint16_t>(j);
    for (std::uint64_t j = g.size() - 1; j > 0; --j) {
      std::swap(g[j], g[rng.bounded(j + 1)]);
    }
    std::vector<std::uint16_t> phat(g.size()), q(g.size());
    core::build_row_schedule(g, width, phat, q);
    std::vector<std::uint64_t> dest(width);
    double total = 0;
    const std::uint64_t warps = g.size() / width;
    for (std::uint64_t warp = 0; warp < warps; ++warp) {
      for (std::uint32_t k = 0; k < width; ++k) dest[k] = q[warp * width + k] % width;
      total += net.route(dest).passes;
    }
    table.add_row({"scheduled q-warps (Konig CF)", util::format_double(total / warps, 2),
                   util::format_double(total / warps, 2) + "x",
                   "conflict-free != omega-routable"});
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout
      << "\nReading: the model's 1-stage charge for conflict-free warps assumes a\n"
         "crossbar; through an omega network the same warps average the factor\n"
         "shown. GPUs implement per-bank crossbars for shared memory, so the\n"
         "paper's idealization is the right one for its target — this ablation\n"
         "bounds how much a cheaper NoC would cost the scheduled algorithm.\n";
  return 0;
}
