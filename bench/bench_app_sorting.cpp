/// \file bench_app_sorting.cpp
/// \brief Application study: Batcher's bitonic sorting network executed
///        on the simulated HMM (paper Section I: "sorting networks such
///        as bitonic sorting also involve permutation in each stage").
///
/// Each of the log^2(n)/2 stages is one exec kernel: two paired global
/// reads, a compare-exchange compute step, two writes. With the natural
/// thread -> pair assignment, stages at distance j >= w are perfectly
/// coalesced and stages at j < w read with stride 2 (exactly 2 address
/// groups per warp) — mildly casual, bounded by 2x. A deliberately
/// scrambled assignment (bit-reversed pair ids) destroys the alignment
/// entirely (w groups per warp), multiplying the model time ~6-9x: the
/// measured version of the paper's point that network stages are
/// permutations whose *layout* decides the cost.
///
/// Usage: bench_app_sorting [--n 16K] [--csv]

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "exec/kernel.hpp"

namespace {

using namespace hmm;

/// One compare-exchange stage (distance j, direction blocks of k) on
/// the exec machine. `scramble` remaps thread->pair assignment through
/// a bit-reversed ordering, destroying warp alignment (the casual
/// variant) without changing the sorting semantics.
std::uint64_t bitonic_stage_exec(exec::Machine& m, exec::GlobalArray<float> data,
                                 std::uint64_t k, std::uint64_t j, bool scramble,
                                 std::uint64_t block_size) {
  const std::uint64_t n = data.size;
  const std::uint64_t pairs = n / 2;
  const unsigned pair_bits = static_cast<unsigned>(util::log2_exact(pairs));

  struct Regs {
    float lo = 0, hi = 0;
    std::uint64_t i = 0;  // low partner index
  };
  // Thread t owns pair p(t): insert bit log2(j) as zero into the pair id.
  auto pair_low_index = [j, scramble, pair_bits](const exec::ThreadCtx& c) {
    std::uint64_t t = c.global_id();
    if (scramble) t = util::bit_reverse(t, pair_bits);
    const std::uint64_t low_mask = j - 1;
    return ((t & ~low_mask) << 1) | (t & low_mask);
  };

  exec::Kernel<Regs> kern("bitonic k" + std::to_string(k) + " j" + std::to_string(j));
  // Declare casual and let the simulator observe the true class — the
  // point of the experiment.
  const auto declared = model::AccessClass::kCasual;
  kern.compute([pair_low_index](const exec::ThreadCtx& c, Regs& r) {
        r.i = pair_low_index(c);
      })
      .read_global<float>(data,
                          [](const exec::ThreadCtx&, const Regs& r) { return r.i; },
                          [](Regs& r, float v) { r.lo = v; }, declared, "read lo")
      .read_global<float>(data,
                          [j](const exec::ThreadCtx&, const Regs& r) { return r.i + j; },
                          [](Regs& r, float v) { r.hi = v; }, declared, "read hi")
      .compute([k](const exec::ThreadCtx&, Regs& r) {
        const bool up = (r.i & k) == 0;
        if ((up && r.lo > r.hi) || (!up && r.lo < r.hi)) std::swap(r.lo, r.hi);
      })
      .write_global<float>(data,
                           [](const exec::ThreadCtx&, const Regs& r) { return r.i; },
                           [](const exec::ThreadCtx&, const Regs& r) { return r.lo; },
                           declared, "write lo")
      .write_global<float>(data,
                           [j](const exec::ThreadCtx&, const Regs& r) { return r.i + j; },
                           [](const exec::ThreadCtx&, const Regs& r) { return r.hi; },
                           declared, "write hi");
  return m.launch(exec::LaunchConfig{pairs / block_size, block_size}, kern);
}

struct SortRun {
  std::uint64_t time_units = 0;
  std::uint64_t casual_rounds = 0;
  bool sorted = false;
};

SortRun sort_on_hmm(const model::MachineParams& mp, std::uint64_t n, bool scramble) {
  util::Xoshiro256 rng(17);
  util::aligned_vector<float> host(n);
  for (auto& v : host) v = static_cast<float>(rng.uniform01());

  exec::Machine m(mp);
  auto data = m.alloc_global<float>(std::span<const float>{host.data(), n});
  const std::uint64_t block = std::min<std::uint64_t>(1024, n / 2);

  SortRun run;
  for (std::uint64_t k = 2; k <= n; k <<= 1) {
    for (std::uint64_t j = k >> 1; j > 0; j >>= 1) {
      run.time_units += bitonic_stage_exec(m, data, k, j, scramble, block);
    }
  }
  const auto counts = m.sim().stats().observed_counts();
  run.casual_rounds = counts.casual_read_global + counts.casual_write_global;

  util::aligned_vector<float> out(n);
  m.read_back(data, std::span<float>{out.data(), n});
  run.sorted = std::is_sorted(out.begin(), out.end());
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "n"}, std::cerr)) return 2;
  const std::uint64_t n = cli.get_int("n", 16 << 10);
  const bool csv = cli.get_bool("csv");

  const model::MachineParams mp = model::MachineParams::gtx680();
  bench::print_header("Application — bitonic sorting network on the simulated HMM",
                      "Section I motivation (sorting networks)");

  util::Table table({"n", "variant", "time units", "casual rounds", "sorted"});
  for (std::uint64_t size = 4 << 10; size <= n; size <<= 1) {
    const SortRun aligned = sort_on_hmm(mp, size, /*scramble=*/false);
    const SortRun scrambled = sort_on_hmm(mp, size, /*scramble=*/true);
    table.add_row({bench::size_label(size), "warp-aligned pairs",
                   util::format_count(aligned.time_units),
                   util::format_count(aligned.casual_rounds), aligned.sorted ? "yes" : "NO"});
    table.add_row({"", "scrambled pairs", util::format_count(scrambled.time_units),
                   util::format_count(scrambled.casual_rounds),
                   scrambled.sorted ? "yes" : "NO"});
    table.add_separator();
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nNatural pairing: j >= w stages fully coalesced, j < w stages stride-2\n"
               "(2 groups per warp, the mild 'casual' rounds counted above). Scrambled\n"
               "pairing: every stage scatters across w groups — the model time blows up\n"
               "by the same w/2 factor that separates the conventional and scheduled\n"
               "permutation algorithms.\n";
  return 0;
}
