/// \file bench_ablation_coloring.cpp
/// \brief Ablation of the planner's König-coloring strategy: Euler
///        split (the paper's constructive Theorem 6 specialised to
///        power-of-two degrees) vs matching peel vs alternating path.
///
/// The planner defaults to Euler split; this bench justifies that
/// choice with end-to-end plan-build times per strategy.

#include <benchmark/benchmark.h>

#include <numeric>

#include "core/plan.hpp"
#include "graph/coloring.hpp"
#include "perm/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace hmm;

graph::BipartiteMultigraph random_regular(std::uint32_t nodes, std::uint32_t degree,
                                          std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  graph::BipartiteMultigraph g(nodes, nodes);
  std::vector<std::uint32_t> perm(nodes);
  for (std::uint32_t k = 0; k < degree; ++k) {
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::uint32_t i = nodes - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.bounded(i + 1)]);
    }
    for (std::uint32_t u = 0; u < nodes; ++u) g.add_edge(u, perm[u]);
  }
  return g;
}

void BM_ColorGraph(benchmark::State& state, graph::ColoringAlgorithm algo) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const auto degree = static_cast<std::uint32_t>(state.range(1));
  graph::BipartiteMultigraph g = random_regular(nodes, degree, nodes + degree);
  for (auto _ : state) {
    auto c = graph::color_edges(g, algo);
    benchmark::DoNotOptimize(c.color.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * g.edge_count()));
}

void BM_EulerSplit(benchmark::State& state) {
  BM_ColorGraph(state, graph::ColoringAlgorithm::kEulerSplit);
}
void BM_MatchingPeel(benchmark::State& state) {
  BM_ColorGraph(state, graph::ColoringAlgorithm::kMatchingPeel);
}
void BM_AlternatingPath(benchmark::State& state) {
  BM_ColorGraph(state, graph::ColoringAlgorithm::kAlternatingPath);
}

// (nodes, degree) grid matching the planner's two graph shapes:
// bank graphs (w x w, degree len/w) and row graphs (r x r, degree m).
void ColoringArgs(benchmark::internal::Benchmark* b) {
  b->Args({32, 32})->Args({32, 128})->Args({256, 64})->Args({1024, 64})->Args({1024, 256});
}

BENCHMARK(BM_EulerSplit)->Apply(ColoringArgs);
BENCHMARK(BM_MatchingPeel)->Apply(ColoringArgs);
BENCHMARK(BM_AlternatingPath)->Apply(ColoringArgs);

// End-to-end: full plan build per strategy (Euler split vs matching
// peel; alternating path omitted — identical output, strictly slower).
void BM_PlanBuild(benchmark::State& state, graph::ColoringAlgorithm algo) {
  const std::uint64_t n = state.range(0);
  const model::MachineParams mp = model::MachineParams::gtx680();
  const perm::Permutation p = perm::bit_reversal(n);
  for (auto _ : state) {
    auto plan = core::ScheduledPlan::build(p, mp, algo);
    benchmark::DoNotOptimize(plan.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}

void BM_PlanBuildEuler(benchmark::State& state) {
  BM_PlanBuild(state, graph::ColoringAlgorithm::kEulerSplit);
}
void BM_PlanBuildPeel(benchmark::State& state) {
  BM_PlanBuild(state, graph::ColoringAlgorithm::kMatchingPeel);
}

BENCHMARK(BM_PlanBuildEuler)->Arg(1 << 14)->Arg(1 << 16)->Arg(1 << 18);
BENCHMARK(BM_PlanBuildPeel)->Arg(1 << 14)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
