/// Tests for `net::Router`: consistent-hash preference lists, proxied
/// end-to-end serving, and the fault-tolerance battery the fleet story
/// rests on — failover off a killed backend is bit-identical, an
/// ejected backend rejoins through the half-open probe with its plan
/// registry replayed, a restarted (plan-less) backend is healed by the
/// lazy resync path, and a dead shard trips its circuit breaker so
/// later requests shed it in O(1) instead of burning a connect timeout.
///
/// Backends are real in-process `net::Server`s over real
/// `RobustPermuteService`s on loopback; "killing" one is `stop()`, and
/// "restarting" binds a fresh Server (fresh, empty service — exactly
/// what a crashed permd looks like to the router) on the same port.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "perm/generators.hpp"
#include "perm/permutation.hpp"
#include "runtime/service.hpp"
#include "runtime/status.hpp"
#include "util/thread_pool.hpp"

namespace hmm {
namespace {

using namespace std::chrono_literals;
using runtime::Status;
using runtime::StatusCode;

/// One in-process permd backend. Restartable: start(port) rebinds the
/// same port with a *fresh* service (empty plan registry), which is
/// what a crash-restarted backend looks like.
struct Backend {
  std::unique_ptr<runtime::RobustPermuteService> service;
  std::unique_ptr<net::Server> server;
  std::uint16_t port = 0;

  void start(std::uint16_t fixed_port = 0) {
    service = std::make_unique<runtime::RobustPermuteService>(
        util::ThreadPool::global(), runtime::RobustPermuteService::Config{});
    net::Server::Config config;
    config.port = fixed_port;
    config.poll_interval = 10ms;
    server = std::make_unique<net::Server>(*service, config);
    const Status started = server->start();
    ASSERT_TRUE(started.is_ok()) << started.to_string();
    port = server->port();
  }

  void stop() {
    if (server) server->stop();
  }
};

/// N backends + a router over them, with probe/breaker knobs tuned for
/// test time scales (override via `tune` before start).
struct Fleet {
  std::vector<std::unique_ptr<Backend>> backends;
  std::unique_ptr<net::Router> router;

  explicit Fleet(std::size_t n, const std::function<void(net::Router::Config&)>& tune = {}) {
    net::Router::Config config;
    for (std::size_t i = 0; i < n; ++i) {
      backends.push_back(std::make_unique<Backend>());
      backends.back()->start();
      config.backends.push_back(net::BackendAddress{"127.0.0.1", backends.back()->port});
    }
    config.probe_interval = 50ms;
    config.probe_timeout = 500ms;
    config.eject_after = 2;
    config.breaker_threshold = 3;
    config.breaker_cooldown = 200ms;
    config.failover_backoff_base = 1ms;
    config.failover_backoff_cap = 5ms;
    config.connect_timeout = 500ms;
    config.io_timeout = 5'000ms;
    config.poll_interval = 10ms;
    if (tune) tune(config);
    router = std::make_unique<net::Router>(std::move(config));
    const Status started = router->start();
    EXPECT_TRUE(started.is_ok()) << started.to_string();
  }

  ~Fleet() {
    if (router) router->stop();
    for (auto& b : backends) b->stop();
  }

  [[nodiscard]] net::Client::Config client_config() const {
    net::Client::Config c;
    c.host = "127.0.0.1";
    c.port = router->port();
    c.connect_timeout = 2'000ms;
    c.io_timeout = 10'000ms;
    return c;
  }

  /// Spin until `pred` holds or ~`budget` elapses.
  static bool eventually(const std::function<bool()>& pred,
                         std::chrono::milliseconds budget = 5'000ms) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(10ms);
    }
    return pred();
  }
};

// ------------------------------------------------------------- hashing

TEST(RouterRing, PreferenceListIsDistinctAndCoversEveryBackend) {
  Fleet fleet(3);
  for (std::uint64_t key : {0ull, 1ull, 0xdeadbeefull, 0xffff'ffff'ffff'ffffull}) {
    const std::vector<std::size_t> prefs = fleet.router->preference(key);
    ASSERT_EQ(prefs.size(), 3u) << "key " << key;
    std::vector<std::size_t> sorted = prefs;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2})) << "key " << key;
  }
}

TEST(RouterRing, KeysSpreadAcrossBackends) {
  Fleet fleet(3);
  std::vector<std::uint64_t> primaries(3, 0);
  for (std::uint64_t key = 0; key < 512; ++key) {
    primaries[fleet.router->preference(key * 0x9e3779b97f4a7c15ull)[0]]++;
  }
  // With 64 vnodes/backend the split is rough, not exact; each backend
  // must own a nontrivial share (no degenerate all-on-one ring).
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_GT(primaries[b], 512u / 10) << "backend " << b << " owns almost nothing";
  }
}

// ------------------------------------------------------------ proxying

TEST(RouterLoopback, RoutedPermuteMatchesLocalApply) {
  Fleet fleet(3);
  net::Client client(fleet.client_config());

  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::by_name("bit-reversal", n, 1);
  auto plan = client.submit_plan(p);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();

  std::vector<std::uint32_t> a(n), b(n, 0), expect(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i * 2654435761u);
  p.apply<std::uint32_t>({a.data(), n}, {expect.data(), n});

  const Status s = client.permute(plan.value(), {a.data(), n}, {b.data(), n});
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_EQ(b, expect);

  const net::Router::Snapshot snap = fleet.router->snapshot();
  EXPECT_GE(snap.requests_total, 2u);  // SUBMIT_PLAN + PERMUTE
  EXPECT_EQ(snap.no_backend_available, 0u);
}

TEST(RouterLoopback, PingAndStatsAreAnsweredLocally) {
  Fleet fleet(2);
  net::Client client(fleet.client_config());
  EXPECT_TRUE(client.ping().is_ok());
  auto stats = client.stats_json();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_NE(stats.value().find("\"router\""), std::string::npos);
  EXPECT_NE(stats.value().find("\"backends\""), std::string::npos);
  // Local answers are not proxied requests.
  EXPECT_EQ(fleet.router->snapshot().requests_total, 0u);
}

TEST(RouterLoopback, ResubmittingAPlanDeduplicates) {
  Fleet fleet(2);
  net::Client client(fleet.client_config());
  const perm::Permutation p = perm::by_name("shuffle", 512, 3);
  auto first = client.submit_plan(p);
  auto second = client.submit_plan(p);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
  EXPECT_EQ(fleet.router->plans(), 1u);
}

// ------------------------------------------------------------ failover

TEST(RouterFailover, KilledPrimaryFailsOverBitIdenticalWithoutResubmit) {
  Fleet fleet(3);
  net::Client client(fleet.client_config());

  const std::uint64_t n = 2048;
  const perm::Permutation p = perm::by_name("bit-reversal", n, 1);
  auto plan = client.submit_plan(p);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();

  // Replication (default 2) already pushed the plan to the first
  // replica of the preference list — the exact backend the failover
  // lands on. Killing the primary must therefore be a hit, not a
  // resubmit.
  const std::vector<std::size_t> prefs = fleet.router->preference(plan.value());
  fleet.backends[prefs[0]]->stop();

  std::vector<std::uint32_t> a(n), b(n, 0), expect(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i ^ 0xa5a5);
  p.apply<std::uint32_t>({a.data(), n}, {expect.data(), n});

  const Status s = client.permute(plan.value(), {a.data(), n}, {b.data(), n});
  ASSERT_TRUE(s.is_ok()) << "failover did not serve: " << s.to_string();
  EXPECT_EQ(b, expect);

  const net::Router::Snapshot snap = fleet.router->snapshot();
  EXPECT_GE(snap.failovers_total, 1u);
  EXPECT_EQ(snap.plan_resyncs, 0u) << "replica should already hold the plan";
  EXPECT_GE(snap.backends[prefs[1]].failovers_to, 1u);
}

TEST(RouterFailover, EjectedBackendRecoversViaHalfOpenProbeAndServesAgain) {
  Fleet fleet(3);
  net::Client client(fleet.client_config());

  // Register a handful of plans so the recovery resync has a registry
  // to replay; remember one routed to the backend we will kill.
  const std::uint64_t n = 1024;
  std::vector<perm::Permutation> pop;
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seedling = 1; seedling <= 6; ++seedling) {
    pop.push_back(perm::by_name("random", n, seedling));
    auto id = client.submit_plan(pop.back());
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    ids.push_back(id.value());
  }

  const std::size_t victim = fleet.router->preference(ids[0])[0];
  const std::uint16_t victim_port = fleet.backends[victim]->port;
  fleet.backends[victim]->stop();

  ASSERT_TRUE(Fleet::eventually([&] { return !fleet.router->backend_healthy(victim); }))
      << "health checker never ejected the dead backend";

  // Restart on the same port with an empty plan registry. The half-open
  // probe must notice, replay the router's registry into it, and only
  // then mark it healthy.
  fleet.backends[victim]->start(victim_port);
  ASSERT_EQ(fleet.backends[victim]->port, victim_port);
  ASSERT_TRUE(Fleet::eventually([&] { return fleet.router->backend_healthy(victim); }))
      << "restarted backend never rejoined";

  net::Router::Snapshot snap = fleet.router->snapshot();
  EXPECT_GE(snap.backends[victim].ejections, 1u);
  EXPECT_GE(snap.backends[victim].recoveries, 1u);
  // The rejoin replayed every remembered plan into the empty registry.
  EXPECT_GE(snap.backends[victim].plans_synced, ids.size());
  EXPECT_EQ(fleet.backends[victim]->server->plans(), ids.size());

  // And it serves traffic again: route a request whose primary it is.
  const std::uint64_t before_ok = snap.backends[victim].ok;
  std::vector<std::uint32_t> a(n, 7), b(n, 0), expect(n);
  pop[0].apply<std::uint32_t>({a.data(), n}, {expect.data(), n});
  const Status s = client.permute(ids[0], {a.data(), n}, {b.data(), n});
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_EQ(b, expect);
  EXPECT_GT(fleet.router->snapshot().backends[victim].ok, before_ok)
      << "recovered backend did not serve the request it is primary for";
}

TEST(RouterFailover, QuietRestartIsHealedByLazyPlanResync) {
  // Probes effectively off: the router never notices the restart, so
  // the *request path* must heal the empty registry (backend answers
  // "unknown plan", router re-pushes the plans it holds, retries once).
  Fleet fleet(2, [](net::Router::Config& c) {
    c.probe_interval = 60'000ms;
    c.eject_after = 1'000'000;
  });
  net::Client client(fleet.client_config());

  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::by_name("bit-reversal", n, 1);
  auto plan = client.submit_plan(p);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();

  // Bounce every backend: wherever the request lands, the registry is
  // empty and the cached link is stale.
  for (auto& b : fleet.backends) {
    const std::uint16_t port = b->port;
    b->stop();
    b->start(port);
  }

  std::vector<std::uint32_t> a(n), b(n, 0), expect(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(3 * i + 1);
  p.apply<std::uint32_t>({a.data(), n}, {expect.data(), n});

  const Status s = client.permute(plan.value(), {a.data(), n}, {b.data(), n});
  ASSERT_TRUE(s.is_ok()) << "lazy resync did not heal the restart: " << s.to_string();
  EXPECT_EQ(b, expect);
  EXPECT_GE(fleet.router->snapshot().plan_resyncs, 1u);
}

// ------------------------------------------------------------- breaker

TEST(RouterBreaker, OpensAfterConsecutiveFailuresAndShedsInO1) {
  // One live backend + one permanently dead address. Health checking is
  // effectively disabled so ejection cannot mask the breaker: every
  // request aimed at the dead shard must burn a connect failure until
  // the breaker opens, after which it is skipped outright.
  auto doomed = net::TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(doomed.ok());
  const std::uint16_t dead_port = doomed.value().port();
  doomed.value().close();

  std::vector<std::unique_ptr<Backend>> live;
  live.push_back(std::make_unique<Backend>());
  live.back()->start();

  net::Router::Config config;
  config.backends = {net::BackendAddress{"127.0.0.1", live.back()->port},
                     net::BackendAddress{"127.0.0.1", dead_port}};
  config.probe_interval = 60'000ms;
  config.eject_after = 1'000'000;
  config.breaker_threshold = 2;
  config.breaker_cooldown = 60'000ms;
  config.failover_backoff_base = 1ms;
  config.failover_backoff_cap = 2ms;
  config.connect_timeout = 250ms;
  config.io_timeout = 5'000ms;
  config.poll_interval = 10ms;
  net::Router router(std::move(config));
  ASSERT_TRUE(router.start().is_ok());

  net::Client::Config cc;
  cc.host = "127.0.0.1";
  cc.port = router.port();
  net::Client client(cc);

  // Find a plan whose primary is the dead shard, so every permute must
  // attempt it first (until the breaker opens).
  const std::uint64_t n = 512;
  std::uint64_t dead_primary_id = 0;
  perm::Permutation chosen = perm::by_name("random", n, 1);
  for (std::uint64_t seedling = 1; seedling <= 64; ++seedling) {
    perm::Permutation candidate = perm::by_name("random", n, seedling);
    auto id = client.submit_plan(candidate);
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    if (router.preference(id.value())[0] == 1) {
      dead_primary_id = id.value();
      chosen = std::move(candidate);
      break;
    }
  }
  ASSERT_NE(dead_primary_id, 0u) << "no sampled plan hashed to the dead shard";

  std::vector<std::uint32_t> a(n, 9), b(n, 0), expect(n);
  chosen.apply<std::uint32_t>({a.data(), n}, {expect.data(), n});

  // Every attempt succeeds via failover; after breaker_threshold
  // consecutive transport failures the dead shard's breaker opens.
  for (int round = 0; round < 4; ++round) {
    const Status s = client.permute(dead_primary_id, {a.data(), n}, {b.data(), n});
    ASSERT_TRUE(s.is_ok()) << "round " << round << ": " << s.to_string();
    ASSERT_EQ(b, expect);
  }
  EXPECT_TRUE(router.backend_breaker_open(1));

  net::Router::Snapshot snap = router.snapshot();
  EXPECT_GE(snap.backends[1].breaker_opens, 1u);
  const std::uint64_t failures_at_open = snap.backends[1].transport_failures;

  // With the breaker open the dead shard is skipped without a connect:
  // more rounds add short-circuits but no new transport failures.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(client.permute(dead_primary_id, {a.data(), n}, {b.data(), n}).is_ok());
  }
  snap = router.snapshot();
  EXPECT_EQ(snap.backends[1].transport_failures, failures_at_open);
  EXPECT_GE(snap.breaker_short_circuits, 3u);

  router.stop();
  live.back()->stop();
}

}  // namespace
}  // namespace hmm
