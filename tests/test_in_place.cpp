#include <gtest/gtest.h>

#include "core/in_place.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"

namespace hmm::core {
namespace {

TEST(InPlace, MatchesOutOfPlaceForAllFamilies) {
  const std::uint64_t n = 1 << 12;
  for (const auto& name : test::families_for(n)) {
    const perm::Permutation p = perm::by_name(name, n, 5);
    auto data = test::iota_data<std::uint32_t>(n);
    util::aligned_vector<std::uint32_t> expected(n);
    p.apply<std::uint32_t>(data, expected);
    permute_in_place<std::uint32_t>(data, p);
    EXPECT_EQ(data, expected) << name;
  }
}

TEST(InPlace, UnpermuteInverts) {
  const std::uint64_t n = 1 << 10;
  const perm::Permutation p = perm::by_name("random", n, 21);
  auto data = test::iota_data<double>(n);
  const auto original = data;
  permute_in_place<double>(data, p);
  unpermute_in_place<double>(data, p);
  EXPECT_EQ(data, original);
}

TEST(InPlace, UnpermuteEqualsInverseApply) {
  const std::uint64_t n = 1 << 10;
  const perm::Permutation p = perm::by_name("random", n, 22);
  auto a = test::iota_data<float>(n);
  auto b = a;
  unpermute_in_place<float>(a, p);
  permute_in_place<float>(b, p.inverse());
  EXPECT_EQ(a, b);
}

TEST(InPlace, IdentityIsNoop) {
  auto data = test::iota_data<float>(256);
  const auto original = data;
  permute_in_place<float>(data, perm::identical(256));
  EXPECT_EQ(data, original);
}

TEST(InPlace, SingleSwap) {
  util::aligned_vector<std::uint32_t> map = {1, 0, 2, 3};
  const perm::Permutation p(std::move(map));
  util::aligned_vector<int> data = {10, 20, 30, 40};
  permute_in_place<int>(data, p);
  EXPECT_EQ(data, (util::aligned_vector<int>{20, 10, 30, 40}));
}

TEST(CycleStats, Identity) {
  const auto s = analyze_cycles(perm::identical(100));
  EXPECT_EQ(s.cycles, 100u);
  EXPECT_EQ(s.fixed_points, 100u);
  EXPECT_EQ(s.longest, 1u);
  EXPECT_EQ(s.moved, 0u);
}

TEST(CycleStats, SingleNCycle) {
  const auto s = analyze_cycles(perm::rotation(64, 1));
  EXPECT_EQ(s.cycles, 1u);
  EXPECT_EQ(s.fixed_points, 0u);
  EXPECT_EQ(s.longest, 64u);
  EXPECT_EQ(s.moved, 64u);
}

TEST(CycleStats, InvolutionHasShortCycles) {
  util::Xoshiro256 rng(7);
  const perm::Permutation p = perm::random_involution(1 << 10, rng);
  const auto s = analyze_cycles(p);
  EXPECT_LE(s.longest, 2u);
  EXPECT_EQ(s.moved + s.fixed_points, 1u << 10);
  // It really is an involution.
  EXPECT_TRUE(p.compose(p).is_identity());
}

TEST(CycleStats, BitReversalIsInvolution) {
  const auto s = analyze_cycles(perm::bit_reversal(1 << 12));
  EXPECT_LE(s.longest, 2u);
  // Palindromic indices are fixed: 2^(ceil(12/2)) = 64 of them.
  EXPECT_EQ(s.fixed_points, 64u);
}

TEST(CycleStats, CountsAreConsistent) {
  const std::uint64_t n = 1 << 12;
  for (const auto& name : test::families_for(n)) {
    const perm::Permutation p = perm::by_name(name, n, 3);
    const auto s = analyze_cycles(p);
    EXPECT_EQ(s.fixed_points + s.moved, n) << name;
    EXPECT_GE(s.cycles, 1u) << name;
    EXPECT_LE(s.longest, n) << name;
  }
}

}  // namespace
}  // namespace hmm::core
