#include <gtest/gtest.h>

#include "perm/distribution.hpp"
#include "perm/generators.hpp"
#include "perm/permutation.hpp"
#include "test_helpers.hpp"

namespace hmm::perm {
namespace {

TEST(Permutation, IdentityByDefault) {
  Permutation p(8);
  EXPECT_TRUE(p.is_identity());
  EXPECT_EQ(p.size(), 8u);
  EXPECT_EQ(p(5), 5u);
}

TEST(Permutation, ValidationRejectsNonBijection) {
  EXPECT_FALSE(Permutation::is_valid(std::vector<std::uint32_t>{0, 0, 2}));
  EXPECT_FALSE(Permutation::is_valid(std::vector<std::uint32_t>{0, 3, 1}));
  EXPECT_TRUE(Permutation::is_valid(std::vector<std::uint32_t>{2, 0, 1}));
}

TEST(Permutation, InverseRoundTrip) {
  util::Xoshiro256 rng(12);
  const Permutation p = random(256, rng);
  const Permutation inv = p.inverse();
  for (std::uint64_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(inv(p(i)), i);
    EXPECT_EQ(p(inv(i)), i);
  }
  EXPECT_TRUE(p.compose(inv).is_identity());
  EXPECT_TRUE(inv.compose(p).is_identity());
}

TEST(Permutation, ComposeAssociative) {
  util::Xoshiro256 rng(4);
  const Permutation a = random(64, rng), b = random(64, rng), c = random(64, rng);
  EXPECT_EQ(a.compose(b).compose(c), a.compose(b.compose(c)));
}

TEST(Permutation, ApplyMatchesDefinition) {
  const Permutation p = bit_reversal(16);
  auto a = test::iota_data<std::uint32_t>(16);
  std::vector<std::uint32_t> b(16, ~0u);
  p.apply<std::uint32_t>(a, b);
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(b[p(i)], a[i]);
}

TEST(Generators, ShuffleIsBitRotation) {
  const Permutation s = shuffle(16);
  // 16 = 4 bits: 0b0001 -> 0b0010, 0b1000 -> 0b0001.
  EXPECT_EQ(s(1), 2u);
  EXPECT_EQ(s(8), 1u);
  EXPECT_EQ(s(0), 0u);
  EXPECT_EQ(s(15), 15u);
}

TEST(Generators, UnshuffleInvertsShuffle) {
  for (std::uint64_t n : {16ull, 64ull, 1024ull}) {
    EXPECT_EQ(shuffle(n).inverse(), unshuffle(n)) << n;
  }
}

TEST(Generators, BitReversalInvolution) {
  for (std::uint64_t n : {8ull, 64ull, 4096ull}) {
    const Permutation p = bit_reversal(n);
    EXPECT_TRUE(p.compose(p).is_identity()) << n;
  }
}

TEST(Generators, TransposeMatchesFormula) {
  const Permutation t = transpose(4, 8);
  for (std::uint64_t i = 0; i < 4; ++i) {
    for (std::uint64_t j = 0; j < 8; ++j) {
      EXPECT_EQ(t(i * 8 + j), j * 4 + i);
    }
  }
}

TEST(Generators, SquareTransposeInvolution) {
  const Permutation t = transpose_square(256);
  EXPECT_TRUE(t.compose(t).is_identity());
}

TEST(Generators, ButterflyEqualsSquareTranspose) {
  // Swapping bit halves of the index IS the square matrix transpose.
  for (std::uint64_t n : {16ull, 256ull, 4096ull}) {
    EXPECT_EQ(butterfly(n), transpose_square(n)) << n;
  }
}

TEST(Generators, RandomIsValidAndSeedStable) {
  util::Xoshiro256 rng1(5), rng2(5);
  const Permutation p1 = random(512, rng1);
  const Permutation p2 = random(512, rng2);
  EXPECT_EQ(p1, p2);
  util::Xoshiro256 rng3(6);
  EXPECT_NE(random(512, rng3), p1);
}

TEST(Generators, RotationWrapsAround) {
  const Permutation r = rotation(10, 3);
  EXPECT_EQ(r(0), 3u);
  EXPECT_EQ(r(9), 2u);
}

TEST(Generators, BlockSwap) {
  const Permutation p = block_swap(16, 4);
  EXPECT_EQ(p(0), 4u);
  EXPECT_EQ(p(4), 0u);
  EXPECT_EQ(p(8), 12u);
  EXPECT_TRUE(p.compose(p).is_identity());
}

TEST(Generators, ByNameCoversAllFamilies) {
  for (const auto& name : family_names()) {
    const Permutation p = by_name(name, 256);
    EXPECT_EQ(p.size(), 256u) << name;
  }
}

TEST(Generators, XorMaskIsInvolutionWithMinimalDistribution) {
  const std::uint64_t n = 1 << 12;
  for (std::uint64_t mask : {1ull, 31ull, 32ull, 1ull << 11, (1ull << 12) - 1}) {
    const Permutation p = xor_mask(n, mask);
    EXPECT_TRUE(p.compose(p).is_identity()) << mask;
    EXPECT_EQ(p(0), mask);
    // Aligned group swap: minimal distribution for every mask.
    EXPECT_EQ(distribution(p, 32), n / 32) << mask;
  }
}

TEST(Generators, BitComplementReverses) {
  const Permutation p = bit_complement(256);
  EXPECT_EQ(p(0), 255u);
  EXPECT_EQ(p(255), 0u);
  EXPECT_TRUE(p.compose(p).is_identity());
  // Reversed warps still fill whole groups: minimal distribution.
  EXPECT_EQ(distribution(p, 32), 256u / 32);
}

TEST(Generators, StrideDistributionByStrideValue) {
  const std::uint64_t n = 1 << 12;
  // stride w+1 = 33: targets t*33 spread one per group -> maximal.
  const Permutation p33 = stride(n, 33);
  EXPECT_EQ(p33(0), 0u);
  EXPECT_EQ(p33(1), 33u);
  EXPECT_EQ(distribution(p33, 32), n);
  // stride n/2+1: t*(n/2+1) mod n = (t&1)*n/2 + t -> exactly 2 groups
  // per warp.
  const Permutation phalf = stride(n, n / 2 + 1);
  EXPECT_EQ(distribution(phalf, 32), 2 * n / 32);
}

TEST(Generators, StrideOneIsIdentity) {
  EXPECT_TRUE(stride(64, 1).is_identity());
}

TEST(Generators, SegmentReverse) {
  const Permutation p = segment_reverse(16, 4);
  EXPECT_EQ(p(0), 3u);
  EXPECT_EQ(p(3), 0u);
  EXPECT_EQ(p(4), 7u);
  EXPECT_TRUE(p.compose(p).is_identity());
  // Segments >= width keep warps inside their groups.
  EXPECT_EQ(distribution(segment_reverse(1 << 12, 64), 32), (1ull << 12) / 32);
}

TEST(Generators, TensorAxesIdentity) {
  const Permutation p = tensor_axes({4, 8, 2}, {0, 1, 2});
  EXPECT_TRUE(p.is_identity());
}

TEST(Generators, TensorAxesMatchesMatrixTranspose) {
  // Collapsing one axis to size 1 reduces the 3-D permutation to the
  // 2-D transpose.
  EXPECT_EQ(tensor_axes({1, 8, 16}, {0, 2, 1}), transpose(8, 16));
  EXPECT_EQ(tensor_axes({8, 16, 1}, {1, 0, 2}), transpose(8, 16));
}

TEST(Generators, TensorAxesHwcToChw) {
  // 2x2 image, 3 channels: HWC -> CHW (axes {2,0,1}).
  const Permutation p = tensor_axes({2, 2, 3}, {2, 0, 1});
  // HWC element (h,w,c) at index (h*2+w)*3+c lands at (c*2+h)*2+w.
  for (std::uint64_t h = 0; h < 2; ++h) {
    for (std::uint64_t w = 0; w < 2; ++w) {
      for (std::uint64_t c = 0; c < 3; ++c) {
        EXPECT_EQ(p((h * 2 + w) * 3 + c), (c * 2 + h) * 2 + w);
      }
    }
  }
}

TEST(Generators, TensorAxesComposeToIdentity) {
  // Applying {1,2,0} then its inverse {2,0,1} restores the layout.
  const std::array<std::uint64_t, 3> dims{4, 8, 16};
  const Permutation fwd = tensor_axes(dims, {1, 2, 0});
  const std::array<std::uint64_t, 3> mid{dims[1], dims[2], dims[0]};
  const Permutation back = tensor_axes(mid, {2, 0, 1});
  EXPECT_TRUE(back.compose(fwd).is_identity());
}

TEST(Generators, InterleaveRoundTrip) {
  const std::uint64_t n = 64, ways = 4;
  const Permutation in = interleave(n, ways);
  const Permutation out = deinterleave(n, ways);
  EXPECT_TRUE(out.compose(in).is_identity());
  EXPECT_EQ(out, in.inverse());
  // SoA stream s element i -> AoS slot i*ways + s.
  EXPECT_EQ(in(0), 0u);
  EXPECT_EQ(in(16), 1u);   // stream 1, element 0
  EXPECT_EQ(in(17), 5u);   // stream 1, element 1
}

TEST(Generators, InterleaveIsRectangularTranspose) {
  EXPECT_EQ(interleave(64, 4), transpose(4, 16));
}

TEST(Generators, RandomInvolutionIsInvolution) {
  util::Xoshiro256 rng(31);
  for (std::uint64_t n : {16ull, 17ull, 1024ull}) {
    const Permutation p = random_involution(n, rng);
    EXPECT_TRUE(p.compose(p).is_identity()) << n;
  }
}

// ---- distribution metric -------------------------------------------------

TEST(Distribution, IdenticalIsMinimal) {
  const std::uint64_t n = 1 << 14;
  EXPECT_EQ(distribution(identical(n), 32), expected_distribution_identical(n, 32));
  EXPECT_EQ(distribution(identical(n), 32), n / 32);
}

TEST(Distribution, ShuffleIsTwoGroupsPerWarp) {
  const std::uint64_t n = 1 << 14;
  EXPECT_EQ(distribution(shuffle(n), 32), expected_distribution_shuffle(n, 32));
}

TEST(Distribution, BitReversalAndTransposeAreMaximal) {
  const std::uint64_t n = 1 << 14;
  EXPECT_EQ(distribution(bit_reversal(n), 32), n);
  EXPECT_EQ(distribution(transpose_square(n), 32), n);
}

TEST(Distribution, BoundsHoldForAllFamilies) {
  const std::uint64_t n = 1 << 12;
  for (const auto& name : family_names()) {
    const Permutation p = by_name(name, n);
    const std::uint64_t d = distribution(p, 32);
    EXPECT_GE(d, n / 32) << name;
    EXPECT_LE(d, n) << name;
  }
}

TEST(Distribution, RandomCloseToN) {
  // Table III: for n = 4M, d_w(P)/n in [0.99987, 0.99990]. At the test's
  // smaller n the group count n/w is still >> w, so the expected ratio
  // stays close to 1; check a generous window.
  const std::uint64_t n = 1 << 18;
  util::Xoshiro256 rng(17);
  const Permutation p = random(n, rng);
  const double ratio = static_cast<double>(distribution(p, 32)) / static_cast<double>(n);
  EXPECT_GT(ratio, 0.99);
  EXPECT_LE(ratio, 1.0);
}

TEST(Distribution, InverseMetricMatchesExplicitInverse) {
  util::Xoshiro256 rng(23);
  const Permutation p = random(1 << 12, rng);
  EXPECT_EQ(inverse_distribution(p, 32), distribution(p.inverse(), 32));
  const Permutation t = transpose_square(1 << 12);
  EXPECT_EQ(inverse_distribution(t, 32), distribution(t.inverse(), 32));
}

TEST(Distribution, IdentityUnderInverse) {
  const std::uint64_t n = 1 << 12;
  EXPECT_EQ(inverse_distribution(identical(n), 32), n / 32);
}

// Parameterized sweep over widths.
class DistributionWidths : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DistributionWidths, OracleFamilies) {
  const std::uint32_t w = GetParam();
  const std::uint64_t n = 1 << 12;
  EXPECT_EQ(distribution(identical(n), w), n / w);
  EXPECT_EQ(distribution(shuffle(n), w), 2 * n / w);
  EXPECT_EQ(distribution(bit_reversal(n), w), n);
  EXPECT_EQ(distribution(transpose_square(n), w), n);
}

INSTANTIATE_TEST_SUITE_P(Widths, DistributionWidths, ::testing::Values(4u, 8u, 16u, 32u));

}  // namespace
}  // namespace hmm::perm
