#pragma once
/// Shared fixtures/utilities for the test suites.

#include <cstdint>
#include <numeric>
#include <vector>

#include "model/machine.hpp"
#include "perm/generators.hpp"
#include "perm/permutation.hpp"
#include "util/aligned_vector.hpp"
#include "util/rng.hpp"

namespace hmm::test {

/// Machines exercised by the parameterized integration suites: a tiny
/// one (exhaustive checking feasible), a medium one, and the paper's
/// GTX-680-like configuration.
inline std::vector<model::MachineParams> machines() {
  return {
      model::MachineParams::tiny(4, 5, 2),
      model::MachineParams{.width = 8, .latency = 20, .dmms = 4, .shared_bytes = 48 * 1024},
      model::MachineParams::gtx680(),
  };
}

/// Sequential payload 0..n-1 (value == original index; after applying P,
/// b[P(i)] == i, which makes mismatches self-describing).
template <class T>
util::aligned_vector<T> iota_data(std::uint64_t n) {
  util::aligned_vector<T> v(n);
  std::iota(v.begin(), v.end(), T(0));
  return v;
}

/// All paper permutation families valid for a given n.
inline std::vector<std::string> families_for(std::uint64_t n) {
  std::vector<std::string> fams = {"identical", "shuffle", "random", "bit-reversal"};
  // transpose/butterfly require an even power of two.
  if ((63 - __builtin_clzll(n)) % 2 == 0) {
    fams.emplace_back("transpose");
    fams.emplace_back("butterfly");
  }
  fams.emplace_back("rotation");
  fams.emplace_back("gray");
  return fams;
}

}  // namespace hmm::test
