/// Wide-element (multi-word) model: the float-vs-double asymmetry of
/// Table II — coalesced traffic scales with the element width, while
/// scattered traffic hardly changes (each element still costs one
/// transaction).

#include <gtest/gtest.h>

#include <complex>

#include "core/conventional.hpp"
#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "model/cost.hpp"
#include "perm/distribution.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"

namespace hmm {
namespace {

using model::AccessClass;
using model::Dir;
using model::MachineParams;

TEST(WideElements, WordsOf) {
  EXPECT_EQ(model::words_of<float>(), 1u);
  EXPECT_EQ(model::words_of<std::uint16_t>(), 1u);
  EXPECT_EQ(model::words_of<double>(), 2u);
  EXPECT_EQ(model::words_of<std::complex<float>>(), 2u);
  EXPECT_EQ(model::words_of<std::complex<double>>(), 4u);
}

TEST(WideElements, CoalescedRoundScalesWithWords) {
  const MachineParams mp = MachineParams::tiny(8, 50, 2);
  const std::uint64_t n = 256;
  std::vector<std::uint64_t> addrs(n);
  for (std::uint64_t i = 0; i < n; ++i) addrs[i] = i;
  for (std::uint32_t words : {1u, 2u, 4u}) {
    sim::HmmSim sim(mp);
    const std::uint64_t t =
        sim.global_round("r", addrs, Dir::kRead, AccessClass::kCoalesced, words);
    EXPECT_EQ(t, model::coalesced_round_time(n, mp, words)) << words;
    EXPECT_EQ(sim.stats().rounds[0].observed, AccessClass::kCoalesced) << words;
  }
}

TEST(WideElements, ScatterCostIsEffectiveWidthDistribution) {
  const MachineParams mp = MachineParams::tiny(8, 50, 2);
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::by_name("random", n, 7);
  for (std::uint32_t words : {1u, 2u, 4u}) {
    std::vector<std::uint64_t> addrs(n);
    for (std::uint64_t i = 0; i < n; ++i) addrs[i] = p(i);
    sim::HmmSim sim(mp);
    const std::uint64_t t =
        sim.global_round("w", addrs, Dir::kWrite, AccessClass::kCasual, words);
    // One stage per distinct word group: warps stay w threads wide but
    // an element group holds only w/words elements.
    EXPECT_EQ(t, model::casual_round_time(
                     perm::distribution_groups(p, mp.width, mp.width / words), mp))
        << words;
  }
}

TEST(WideElements, SharedRoundScalesWithoutFakeConflicts) {
  const MachineParams mp = MachineParams::tiny(8, 50, 2);
  std::vector<std::uint64_t> addrs = {0, 1, 2, 3, 4, 5, 6, 7};
  sim::HmmSim sim(mp);
  const std::uint64_t t1 =
      sim.shared_round("s", addrs, 8, Dir::kRead, AccessClass::kConflictFree, 1);
  sim.reset();
  const std::uint64_t t2 =
      sim.shared_round("s", addrs, 8, Dir::kRead, AccessClass::kConflictFree, 2);
  EXPECT_EQ(t2, 2 * t1);
  // Element-wide banks: still observed conflict-free at words = 2.
  EXPECT_EQ(sim.stats().rounds[0].observed, AccessClass::kConflictFree);
}

TEST(WideElements, ConventionalSimMatchesClosedFormForDoubles) {
  const MachineParams mp = MachineParams::tiny(8, 50, 2);
  const std::uint64_t n = 1 << 12;
  const perm::Permutation p = perm::bit_reversal(n);
  const std::uint32_t words = model::words_of<double>();

  sim::HmmSim sim(mp);
  const auto a = test::iota_data<double>(n);
  util::aligned_vector<double> b(n);
  const std::uint64_t t = core::d_designated_sim<double>(sim, a, b, p);
  EXPECT_EQ(t, model::d_designated_time(
                   n, perm::distribution_groups(p, mp.width, mp.width / words), mp, words));
  EXPECT_TRUE(sim.stats().declarations_hold());
}

TEST(WideElements, ScheduledSimMatchesClosedFormForDoubles) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 1 << 10;  // 32 x 32
  const perm::Permutation p = perm::bit_reversal(n);
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);

  sim::HmmSim sim(mp);
  const auto a = test::iota_data<double>(n);
  util::aligned_vector<double> b(n);
  const std::uint64_t t = core::scheduled_sim<double>(sim, plan, a, b);
  EXPECT_EQ(t, model::scheduled_time(n, mp, model::words_of<double>()));
  // Still zero casual rounds for doubles.
  const auto counts = sim.stats().observed_counts();
  EXPECT_EQ(counts.casual_read_global + counts.casual_write_global, 0u);
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(b[p(i)], a[i]);
}

TEST(WideElements, Table2FloatDoubleShape) {
  // The paper's Table II: scheduled doubles ~1.6-2x floats at equal n;
  // scattered conventional doubles nearly equal floats.
  const MachineParams mp = MachineParams::gtx680();
  const std::uint64_t n = 1 << 18;
  const perm::Permutation p = perm::bit_reversal(n);

  const std::uint64_t sched_f = model::scheduled_time(n, mp, 1);
  const std::uint64_t sched_d = model::scheduled_time(n, mp, 2);
  const double sched_ratio = static_cast<double>(sched_d) / static_cast<double>(sched_f);
  EXPECT_GT(sched_ratio, 1.5);
  EXPECT_LT(sched_ratio, 2.1);

  const std::uint64_t conv_f =
      model::d_designated_time(n, perm::distribution_groups(p, 32, 32), mp, 1);
  const std::uint64_t conv_d =
      model::d_designated_time(n, perm::distribution_groups(p, 32, 16), mp, 2);
  const double conv_ratio = static_cast<double>(conv_d) / static_cast<double>(conv_f);
  EXPECT_GT(conv_ratio, 0.95);
  EXPECT_LT(conv_ratio, 1.35);
}

TEST(WideElements, IdentityStaysCoalescedForAllWidths) {
  const MachineParams mp = MachineParams::tiny(8, 20, 2);
  const std::uint64_t n = 512;
  const perm::Permutation p = perm::identical(n);
  for (std::uint32_t words : {1u, 2u}) {
    sim::HmmSim sim(mp);
    core::d_designated_sim_rounds(sim, p, words);
    // All three rounds observed coalesced (identity scatter included).
    for (const auto& r : sim.stats().rounds) {
      EXPECT_EQ(r.observed, AccessClass::kCoalesced) << r.label << " words=" << words;
    }
  }
}

}  // namespace
}  // namespace hmm
