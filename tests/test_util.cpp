#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <new>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/aligned_vector.hpp"
#include "util/bits.hpp"
#include "util/buffer_pool.hpp"
#include "util/cli.hpp"
#include "util/numa.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace hmm::util {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Bits, Log2) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(1024), 10u);
  EXPECT_EQ(log2_exact(4096), 12u);
}

TEST(Bits, CeilHelpers) {
  EXPECT_EQ(ceil_pow2(0), 1u);
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(1024), 1024u);
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
}

TEST(Bits, BitReverse) {
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b110, 3), 0b011u);
  // Involution: reverse twice is the identity.
  for (std::uint64_t x = 0; x < 256; ++x) {
    EXPECT_EQ(bit_reverse(bit_reverse(x, 8), 8), x);
  }
}

TEST(Bits, Rotations) {
  EXPECT_EQ(rotate_left_bits(0b100, 3), 0b001u);
  EXPECT_EQ(rotate_left_bits(0b011, 3), 0b110u);
  EXPECT_EQ(rotate_right_bits(0b001, 3), 0b100u);
  // rotate_left then rotate_right is the identity.
  for (std::uint64_t x = 0; x < 1024; ++x) {
    EXPECT_EQ(rotate_right_bits(rotate_left_bits(x, 10), 10), x);
  }
}

TEST(Bits, GrayCodeAdjacentDifferByOneBit) {
  for (std::uint64_t i = 0; i + 1 < 512; ++i) {
    const std::uint64_t diff = gray_code(i) ^ gray_code(i + 1);
    EXPECT_TRUE(is_pow2(diff)) << i;
  }
}

TEST(Bits, IsqrtExact) {
  EXPECT_EQ(isqrt_exact(1), 1u);
  EXPECT_EQ(isqrt_exact(4), 2u);
  EXPECT_EQ(isqrt_exact(1 << 20), 1u << 10);
  EXPECT_EQ(isqrt_exact(9), 3u);
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BoundedInRange) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Rng, BoundedRoughlyUniform) {
  Xoshiro256 rng(3);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, Uniform01Range) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, LongJumpDiverges) {
  Xoshiro256 a(9), b(9);
  b.long_jump();
  EXPECT_NE(a.next(), b.next());
}

TEST(AlignedVector, Alignment) {
  aligned_vector<float> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 128, 0u);
  aligned_vector<double> w(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % 128, 0u);
}

TEST(Table, RendersAllRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_separator();
  t.add_row({"beta", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, Csv) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, JsonRowsStrictNumbersAndEscaping) {
  // Cells strtod happens to parse ("inf", "nan", hex) are not valid
  // bare JSON tokens and must be quoted; control characters inside
  // strings must be \u-escaped.
  Table t({"num", "weird", "text"});
  t.add_row({"-1.5e3", "inf", "a\tb\"c"});
  t.add_row({"42", "0x1A", "nan"});
  std::ostringstream os;
  t.print_json_rows(os);
  EXPECT_EQ(os.str(),
            "{\"num\":-1.5e3,\"weird\":\"inf\",\"text\":\"a\\u0009b\\\"c\"}\n"
            "{\"num\":42,\"weird\":\"0x1A\",\"text\":\"nan\"}\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(format_double(1.234, 2), "1.23");
  EXPECT_EQ(format_count(42), "42");
  EXPECT_EQ(format_bytes(48 * 1024), "48.0KiB");
  EXPECT_EQ(format_bytes(100), "100B");
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::uint64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunksDisjointCover) {
  ThreadPool pool(3);
  std::vector<int> hits(512, 0);
  std::mutex m;
  pool.parallel_for_chunks(0, hits.size(), [&](std::uint64_t lo, std::uint64_t hi) {
    std::lock_guard g(m);
    for (std::uint64_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleWorkerSerialFallback) {
  ThreadPool pool(1);
  std::uint64_t sum = 0;
  pool.parallel_for(0, 100, [&](std::uint64_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  // A throwing kernel must surface on the calling thread (previously it
  // escaped a worker and terminated the process), and every chunk must
  // still be accounted for — no hang, pool usable afterwards.
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [&](std::uint64_t i) {
                          if (i == 333) throw std::runtime_error("kernel failure");
                        }),
      std::runtime_error);

  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, 100, [&](std::uint64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, ParallelForPropagatesExceptionFromSerialFallback) {
  ThreadPool pool(1);  // degraded inline path must behave identically
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::uint64_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitTaskReturnsValueThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit_task([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitTaskDeliversExceptionThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit_task([]() -> int { throw std::runtime_error("task failure"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, NestedParallelForFromSubmittedTasksDoesNotDeadlock) {
  // Regression for the runtime executor's pattern: tasks running *on*
  // the pool fan out with parallel_for on the same pool. With blocking
  // waits this deadlocks once tasks occupy every worker; the help-drain
  // path must keep making progress.
  ThreadPool pool(2);
  std::vector<std::future<std::uint64_t>> futs;
  for (int t = 0; t < 8; ++t) {
    futs.push_back(pool.submit_task([&pool] {
      std::atomic<std::uint64_t> sum{0};
      pool.parallel_for(0, 10000, [&](std::uint64_t i) { sum.fetch_add(i); });
      return sum.load();
    }));
  }
  for (auto& f : futs) EXPECT_EQ(f.get(), 49995000u);
}

TEST(Cli, FlagsAndPositional) {
  // NOTE: `--flag value` consumes the next token, so positionals come
  // first or bare boolean flags go last / use `--flag=true`.
  const char* argv[] = {"prog", "pos1", "--n", "1024", "--type=float", "--verbose"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 1024);
  EXPECT_EQ(cli.get("type"), "float");
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_FALSE(cli.get_bool("quiet"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, SizeSuffixes) {
  const char* argv[] = {"prog", "--n", "4M", "--m=2K"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 4 << 20);
  EXPECT_EQ(cli.get_int("m", 0), 2048);
}

TEST(Cli, ExpectFlagsAcceptsKnownSubset) {
  const char* argv[] = {"prog", "--n", "1024", "--verbose"};
  Cli cli(4, const_cast<char**>(argv));
  std::ostringstream err;
  // Known list may be a superset of what was actually passed.
  EXPECT_TRUE(cli.expect_flags({"n", "verbose", "seed", "csv"}, err));
  EXPECT_TRUE(err.str().empty());
}

TEST(Cli, ExpectFlagsRejectsUnknownWithUsageDump) {
  const char* argv[] = {"prog", "--n", "1024", "--fautl-rate", "0.3"};
  Cli cli(5, const_cast<char**>(argv));
  std::ostringstream err;
  EXPECT_FALSE(cli.expect_flags({"n", "fault-rate"}, err));
  const std::string msg = err.str();
  EXPECT_NE(msg.find("unknown flag --fautl-rate"), std::string::npos);
  EXPECT_NE(msg.find("usage:"), std::string::npos);
  EXPECT_NE(msg.find("--fault-rate"), std::string::npos);
}

TEST(Cli, ExpectFlagsReportsEveryOffender) {
  const char* argv[] = {"prog", "--bogus=1", "--also-bogus=2"};
  Cli cli(3, const_cast<char**>(argv));
  std::ostringstream err;
  EXPECT_FALSE(cli.expect_flags({"n"}, err));
  EXPECT_NE(err.str().find("--bogus"), std::string::npos);
  EXPECT_NE(err.str().find("--also-bogus"), std::string::npos);
}

TEST(Cli, ExpectFlagsIgnoresPositionals) {
  const char* argv[] = {"prog", "ping", "--port", "9"};
  Cli cli(4, const_cast<char**>(argv));
  std::ostringstream err;
  EXPECT_TRUE(cli.expect_flags({"port"}, err));
}

TEST(BufferPool, ClassRoundingIsPowerOfTwoFlooredAtMin) {
  EXPECT_EQ(BufferPool::class_bytes(1, 4096), 4096u);
  EXPECT_EQ(BufferPool::class_bytes(4096, 4096), 4096u);
  EXPECT_EQ(BufferPool::class_bytes(4097, 4096), 8192u);
  EXPECT_EQ(BufferPool::class_bytes(12000, 4096), 16384u);
  EXPECT_EQ(BufferPool::class_bytes(1 << 20, 4096), 1u << 20);
  EXPECT_EQ(BufferPool::class_bytes(100, 256), 256u);
}

TEST(BufferPool, ReleasedBlockIsReusedBySameClass) {
  BufferPool pool;
  std::uint8_t* first = nullptr;
  {
    PooledBuffer b = pool.try_acquire(10000);
    ASSERT_TRUE(b.valid());
    first = b.data();
  }
  PooledBuffer again = pool.try_acquire(9000);  // same 16K class
  ASSERT_TRUE(again.valid());
  EXPECT_EQ(again.data(), first);
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(BufferPool, BuffersAre128ByteAligned) {
  BufferPool pool;
  for (std::size_t bytes : {1u, 5000u, 70000u}) {
    PooledBuffer b = pool.try_acquire(bytes);
    ASSERT_TRUE(b.valid());
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kBufferAlignment, 0u);
    EXPECT_GE(b.capacity(), bytes);
  }
}

TEST(BufferPool, ZeroByteAcquireIsValidAndFree) {
  BufferPool pool;
  PooledBuffer b = pool.try_acquire(0);
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.capacity(), 0u);
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, 0u);
}

TEST(BufferPool, AsSpanViewsTheBlock) {
  BufferPool pool;
  PooledBuffer b = pool.try_acquire(256 * sizeof(std::uint32_t));
  std::span<std::uint32_t> view = b.as_span<std::uint32_t>(256);
  ASSERT_EQ(view.size(), 256u);
  for (std::uint32_t i = 0; i < 256; ++i) view[i] = i;
  EXPECT_EQ(view[255], 255u);
}

TEST(BufferPool, OutstandingCapRefusesAndCounts) {
  BufferPool::Config config;
  config.min_class_bytes = 4096;
  config.max_outstanding_bytes = 8192;
  BufferPool pool(config);
  PooledBuffer a = pool.try_acquire(4096);
  PooledBuffer b = pool.try_acquire(4096);
  ASSERT_TRUE(a.valid() && b.valid());
  PooledBuffer c = pool.try_acquire(4096);  // would exceed the cap
  EXPECT_FALSE(c.valid());
  EXPECT_THROW((void)pool.acquire(4096), std::bad_alloc);
  EXPECT_EQ(pool.stats().acquire_failures, 2u);
  a.reset();  // frees headroom: the next acquire succeeds again
  PooledBuffer d = pool.try_acquire(4096);
  EXPECT_TRUE(d.valid());
}

TEST(BufferPool, PooledCapTrimsInsteadOfCaching) {
  BufferPool::Config config;
  config.min_class_bytes = 4096;
  config.max_pooled_bytes = 4096;
  BufferPool pool(config);
  { PooledBuffer a = pool.try_acquire(4096); }  // pooled (fills the cap)
  { PooledBuffer b = pool.try_acquire(8192); }  // released over the cap: freed
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.trims, 1u);
  EXPECT_LE(s.pooled_bytes, 4096u);
  EXPECT_EQ(s.releases, 2u);
}

TEST(BufferPool, TrimFreesEveryCachedBlock) {
  BufferPool pool;
  { PooledBuffer a = pool.try_acquire(4096); }
  { PooledBuffer b = pool.try_acquire(65536); }
  EXPECT_GT(pool.stats().pooled_bytes, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().pooled_bytes, 0u);
  EXPECT_EQ(pool.stats().outstanding_bytes, 0u);
}

TEST(BufferPool, SteadyStateHasNoMissesAfterWarmup) {
  BufferPool pool;
  for (int i = 0; i < 3; ++i) {  // warm one buffer per class used below
    PooledBuffer warm = pool.try_acquire(4096);
  }
  const std::uint64_t misses_before = pool.stats().misses;
  for (int i = 0; i < 100; ++i) {
    PooledBuffer b = pool.try_acquire(4096);
    ASSERT_TRUE(b.valid());
  }
  EXPECT_EQ(pool.stats().misses, misses_before);
}

// Exercised under TSan in CI: concurrent acquire/release across size
// classes must not race on the free lists or the stats counters.
TEST(BufferPool, ConcurrentAcquireReleaseIsRaceFree) {
  BufferPool pool;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::size_t bytes = 1024u << (static_cast<unsigned>(t + i) % 4);
        PooledBuffer b = pool.try_acquire(bytes);
        ASSERT_TRUE(b.valid());
        b.data()[0] = static_cast<std::uint8_t>(i);
        b.data()[b.capacity() - 1] = static_cast<std::uint8_t>(t);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kThreads) * kItersPerThread);
  EXPECT_EQ(s.outstanding_bytes, 0u);
  EXPECT_EQ(s.releases, s.hits + s.misses);
}

// --- NUMA topology + node-aware pool/worker placement ------------------

TEST(Numa, TopologyHasAtLeastOneNodeAndCoversCpus) {
  const numa::Topology& topo = numa::topology();
  ASSERT_GE(topo.nodes(), 1);
  EXPECT_EQ(numa::node_count(), topo.nodes());
  // Every CPU listed under a node must map back to that node.
  for (int node = 0; node < topo.nodes(); ++node) {
    for (int cpu : topo.node_cpus[static_cast<std::size_t>(node)]) {
      EXPECT_EQ(numa::node_of_cpu(cpu), node);
    }
  }
  // Unknown CPUs clamp to node 0, never out of range.
  EXPECT_EQ(numa::node_of_cpu(-1), 0);
  EXPECT_EQ(numa::node_of_cpu(1 << 20), 0);
}

TEST(Numa, CurrentNodeIsInRange) {
  const int node = numa::current_node();
  EXPECT_GE(node, 0);
  EXPECT_LT(node, numa::node_count());
}

TEST(Numa, AwareRequiresMultipleNodes) {
  // aware() may also be vetoed by HMM_NUMA=0; the invariant that must
  // hold everywhere is: single-node machines are never "aware".
  if (numa::node_count() <= 1) {
    EXPECT_FALSE(numa::aware());
  }
}

TEST(BufferPool, AcquireOnNodeTagsAndRoundTrips) {
  BufferPool pool;
  PooledBuffer buf = pool.try_acquire_on_node(4096, 0);
  ASSERT_TRUE(buf.valid());
  EXPECT_EQ(buf.node(), 0);
  buf.reset();  // releases back to node 0's free list
  PooledBuffer again = pool.try_acquire_on_node(4096, 0);
  ASSERT_TRUE(again.valid());
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.hits, 1u);  // second acquire reuses the released block
  EXPECT_EQ(s.misses, 1u);
}

TEST(BufferPool, OutOfRangeNodeClampsToZero) {
  BufferPool pool;
  PooledBuffer buf = pool.try_acquire_on_node(1024, 99);
  ASSERT_TRUE(buf.valid());
  EXPECT_EQ(buf.node(), 0);
  buf.reset();
  // The clamped release lands on node 0, where plain try_acquire (on a
  // single-node box) finds it again.
  PooledBuffer again = pool.try_acquire_on_node(1024, 0);
  ASSERT_TRUE(again.valid());
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(ThreadPool, PinnedConstructionStillRunsWork) {
  // On a single-node machine pinning degenerates to the unpinned pool;
  // on a multi-node machine this exercises per-node queues + stealing.
  ThreadPool pool(2, /*pin_workers=*/true);
  if (numa::node_count() <= 1) {
    EXPECT_FALSE(pool.workers_pinned());
  }
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for_chunks(0, 1000, [&sum](std::uint64_t lo, std::uint64_t hi) {
    std::uint64_t local = 0;
    for (std::uint64_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2u);
  for (unsigned i = 0; i < pool.size(); ++i) {
    const int node = pool.worker_node(i);
    EXPECT_GE(node, 0);
    EXPECT_LT(node, numa::node_count());
  }
}

}  // namespace
}  // namespace hmm::util
