#include <gtest/gtest.h>

#include <sstream>

#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "perm/generators.hpp"
#include "sim/engine.hpp"
#include "sim/report.hpp"

namespace hmm::sim {
namespace {

using model::MachineParams;

SimStats scheduled_run_stats() {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const core::ScheduledPlan plan =
      core::ScheduledPlan::build(perm::bit_reversal(256), mp);
  HmmSim sim(mp);
  core::scheduled_sim_rounds(sim, plan);
  return sim.stats();
}

TEST(Report, CsvHasHeaderAndOneLinePerRound) {
  const SimStats stats = scheduled_run_stats();
  std::ostringstream os;
  write_rounds_csv(os, stats);
  const std::string out = os.str();
  std::size_t lines = std::count(out.begin(), out.end(), '\n');
  EXPECT_EQ(lines, stats.rounds.size() + 1);  // header + rounds
  EXPECT_NE(out.find("index,label,space,dir"), std::string::npos);
  EXPECT_NE(out.find("pass1:read in,global,read,coalesced,coalesced"), std::string::npos);
}

TEST(Report, SummaryContainsTotals) {
  const SimStats stats = scheduled_run_stats();
  std::ostringstream os;
  write_summary(os, stats);
  const std::string out = os.str();
  EXPECT_NE(out.find("rounds: 32 (global 16, shared 16)"), std::string::npos);
  EXPECT_NE(out.find("coalesced reads/writes:      11/5"), std::string::npos);
  EXPECT_NE(out.find("conflict-free reads/writes:  8/8"), std::string::npos);
  EXPECT_NE(out.find("declared guarantees held: yes"), std::string::npos);
  EXPECT_NE(out.find(std::to_string(stats.total_time)), std::string::npos);
}

TEST(Report, EngineTimelineListsEveryStage) {
  const MachineParams mp = MachineParams::tiny(4, 10, 2);
  PipelineEngine eng(mp, model::Space::kGlobal);
  std::vector<std::uint64_t> addrs = {7, 5, 15, 0, 10, 11, 12, 15};
  const EngineRound round = eng.run_round(addrs);
  std::ostringstream os;
  write_engine_timeline(os, round);
  const std::string out = os.str();
  EXPECT_NE(out.find("stages=5"), std::string::npos);
  // Every request appears.
  for (std::uint64_t a : addrs) {
    EXPECT_NE(out.find("@" + std::to_string(a)), std::string::npos);
  }
  // 5 stage lines + 1 header.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

}  // namespace
}  // namespace hmm::sim
