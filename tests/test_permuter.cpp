#include <gtest/gtest.h>

#include "core/permuter.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"

namespace hmm::core {
namespace {

using model::MachineParams;

template <class T>
void check(OfflinePermuter<T>& op, std::uint64_t n) {
  const auto a = test::iota_data<T>(n);
  util::aligned_vector<T> b(n, T(-1));
  op.permute(a, b);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(b[op.permutation()(i)], a[i]) << i;
  }
}

TEST(Permuter, AutoPicksScheduledForHighDistribution) {
  // Needs a wide machine: scheduled wins iff 14/w + 16/(dw) < 1 (its
  // 16 coalesced rounds vs the conventional ~n casual stages), so the
  // GTX-680 shape (w=32, d=8) is the natural habitat.
  const std::uint64_t n = 1 << 16;
  OfflinePermuter<float> op(perm::bit_reversal(n), MachineParams::gtx680());
  EXPECT_EQ(op.strategy(), Strategy::kScheduled);
  ASSERT_NE(op.plan(), nullptr);
  check(op, n);
}

TEST(Permuter, AutoPicksConventionalForIdentity) {
  const std::uint64_t n = 1 << 16;
  OfflinePermuter<float> op(perm::identical(n), MachineParams::gtx680());
  EXPECT_EQ(op.strategy(), Strategy::kSDesignated);
  EXPECT_EQ(op.plan(), nullptr);
  check(op, n);
}

TEST(Permuter, AutoPicksConventionalOnNarrowMachine) {
  // With w=4 the scheduled constant 16/w exceeds the conventional's
  // worst case, so auto must refuse it regardless of distribution.
  const std::uint64_t n = 1 << 12;
  OfflinePermuter<float> op(perm::bit_reversal(n), MachineParams::tiny(4, 100, 2));
  EXPECT_EQ(op.strategy(), Strategy::kSDesignated);
  check(op, n);
}

TEST(Permuter, AutoFallsBackWhenTooSmall) {
  // n < width^2: the plan is unsupported, conventional takes over.
  OfflinePermuter<float> op(perm::by_name("random", 64, 1), MachineParams::gtx680());
  EXPECT_EQ(op.strategy(), Strategy::kSDesignated);
  check(op, 64);
}

TEST(Permuter, ForcedStrategiesAllCorrect) {
  const std::uint64_t n = 1 << 12;
  const MachineParams mp = MachineParams::tiny(4, 50, 2);
  const perm::Permutation p = perm::by_name("random", n, 9);
  for (Strategy s :
       {Strategy::kScheduled, Strategy::kSDesignated, Strategy::kDDesignated}) {
    OfflinePermuter<double> op(p, mp, s);
    EXPECT_EQ(op.strategy(), s);
    check(op, n);
  }
}

TEST(Permuter, ForcingScheduledOnTinyArrayAborts) {
  EXPECT_DEATH(OfflinePermuter<float>(perm::identical(64), MachineParams::gtx680(),
                                      Strategy::kScheduled),
               "scheduled strategy requires");
}

TEST(Permuter, ReusableAcrossManyArrays) {
  const std::uint64_t n = 1 << 12;
  OfflinePermuter<float> op(perm::shuffle(n), MachineParams::tiny(8, 100, 2),
                            Strategy::kScheduled);
  util::aligned_vector<float> a(n), b(n);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<float>(i * (round + 1));
    op.permute(a, b);
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(b[op.permutation()(i)], a[i]);
    }
  }
}

TEST(Permuter, PredictedTimeMatchesModel) {
  const std::uint64_t n = 1 << 12;
  const MachineParams mp = MachineParams::tiny(4, 100, 2);
  const perm::Permutation p = perm::bit_reversal(n);
  OfflinePermuter<float> sched(p, mp, Strategy::kScheduled);
  EXPECT_EQ(sched.predicted_time_units(), model::scheduled_time(n, mp));
  OfflinePermuter<float> conv(p, mp, Strategy::kDDesignated);
  EXPECT_EQ(conv.predicted_time_units(),
            model::d_designated_time(n, perm::distribution(p, mp.width), mp));
  // Auto must have picked the cheaper one.
  OfflinePermuter<float> autop(p, mp);
  EXPECT_LE(autop.predicted_time_units(),
            std::min(sched.predicted_time_units(), conv.predicted_time_units()));
}

TEST(Permuter, PlanSupportedRule) {
  const MachineParams mp = MachineParams::gtx680();  // w=32
  EXPECT_FALSE(OfflinePermuter<float>::plan_supported(512, mp));    // rows 16 < 32
  EXPECT_TRUE(OfflinePermuter<float>::plan_supported(1024, mp));    // 32x32
  EXPECT_TRUE(OfflinePermuter<float>::plan_supported(2048, mp));    // 32x64
  EXPECT_FALSE(OfflinePermuter<float>::plan_supported(1000, mp));   // not pow2
}

}  // namespace
}  // namespace hmm::core
