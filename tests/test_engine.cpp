#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "model/cost.hpp"
#include "perm/generators.hpp"
#include "sim/engine.hpp"

namespace hmm::sim {
namespace {

using model::MachineParams;
using model::Space;

TEST(Engine, CoalescedRoundMatchesAnalyticFormula) {
  const MachineParams p = MachineParams::tiny(4, 7, 2);
  PipelineEngine eng(p, Space::kGlobal);
  std::vector<std::uint64_t> addrs(64);
  for (std::uint64_t i = 0; i < addrs.size(); ++i) addrs[i] = i;
  const EngineRound round = eng.run_round(addrs);
  EXPECT_EQ(round.stages, 16u);
  EXPECT_EQ(round.duration(), model::coalesced_round_time(addrs.size(), p));
}

TEST(Engine, SharedLatencyOneRetiresImmediately) {
  const MachineParams p = MachineParams::tiny(4, 7, 2);
  PipelineEngine eng(p, Space::kShared);
  std::vector<std::uint64_t> addrs = {0, 1, 2, 3};
  const EngineRound round = eng.run_round(addrs);
  EXPECT_EQ(round.stages, 1u);
  EXPECT_EQ(round.duration(), 1u);
  ASSERT_EQ(round.requests.size(), 4u);
  for (const auto& req : round.requests) {
    EXPECT_EQ(req.issue_cycle, req.finish_cycle);  // latency 1
  }
}

TEST(Engine, Fig3UmmExample) {
  // Fig. 3: warps {7,5,15,0} and {10,11,12,15} on the UMM with w=4:
  // 3 + 2 = 5 stages, completion at 5 + l - 1.
  const MachineParams p = MachineParams::tiny(4, 10, 2);
  PipelineEngine eng(p, Space::kGlobal);
  std::vector<std::uint64_t> addrs = {7, 5, 15, 0, 10, 11, 12, 15};
  const EngineRound round = eng.run_round(addrs);
  EXPECT_EQ(round.stages, 5u);
  EXPECT_EQ(round.duration(), 5u + 10 - 1);
  EXPECT_EQ(round.requests.size(), 8u);
}

TEST(Engine, PerRequestLatencyInvariant) {
  const MachineParams p = MachineParams::tiny(8, 13, 2);
  PipelineEngine eng(p, Space::kGlobal);
  std::vector<std::uint64_t> addrs(128);
  const perm::Permutation perm = perm::by_name("random", addrs.size(), 5);
  for (std::uint64_t i = 0; i < addrs.size(); ++i) addrs[i] = perm(i);
  const EngineRound round = eng.run_round(addrs);
  for (const auto& req : round.requests) {
    EXPECT_EQ(req.finish_cycle - req.issue_cycle, p.latency - 1);
  }
  // Every request retired, exactly once.
  EXPECT_EQ(round.requests.size(), addrs.size());
  std::vector<bool> seen(addrs.size(), false);
  for (const auto& req : round.requests) {
    EXPECT_FALSE(seen[req.thread]);
    seen[req.thread] = true;
    EXPECT_EQ(req.addr, addrs[req.thread]);
  }
}

TEST(Engine, StagesInsertedOnePerCycle) {
  const MachineParams p = MachineParams::tiny(4, 3, 2);
  PipelineEngine eng(p, Space::kGlobal);
  std::vector<std::uint64_t> addrs = {0, 4, 8, 12};  // 4 stages, one warp
  const EngineRound round = eng.run_round(addrs);
  EXPECT_EQ(round.stages, 4u);
  std::vector<std::uint64_t> issues;
  for (const auto& req : round.requests) issues.push_back(req.issue_cycle);
  std::sort(issues.begin(), issues.end());
  for (std::size_t i = 0; i < issues.size(); ++i) {
    EXPECT_EQ(issues[i], round.start_cycle + 1 + i);
  }
}

TEST(Engine, ConsecutiveRoundsAccumulateClock) {
  const MachineParams p = MachineParams::tiny(4, 5, 2);
  PipelineEngine eng(p, Space::kGlobal);
  std::vector<std::uint64_t> addrs = {0, 1, 2, 3};
  const EngineRound r1 = eng.run_round(addrs);
  const EngineRound r2 = eng.run_round(addrs);
  EXPECT_EQ(r2.start_cycle, r1.finish_cycle);
  EXPECT_EQ(r2.duration(), r1.duration());
  eng.reset();
  EXPECT_EQ(eng.now(), 0u);
}

TEST(Engine, EmptyRoundCostsNothing) {
  const MachineParams p = MachineParams::tiny(4, 5, 2);
  PipelineEngine eng(p, Space::kGlobal);
  std::vector<std::uint64_t> addrs(8, model::kNoAccess);
  const EngineRound round = eng.run_round(addrs);
  EXPECT_EQ(round.stages, 0u);
  EXPECT_EQ(round.duration(), 0u);
}

/// Property: the engine's duration equals the analytic rule
/// `stages + latency - 1` for random rounds across machines.
class EngineSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, int>> {};

TEST_P(EngineSweep, DurationMatchesRule) {
  const auto [width, latency, seed] = GetParam();
  MachineParams p = MachineParams::tiny(width, latency, 2);
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> addrs(width * 8);
  for (auto& a : addrs) a = rng.bounded(1024);
  for (Space space : {Space::kGlobal, Space::kShared}) {
    PipelineEngine eng(p, space);
    const EngineRound round = eng.run_round(addrs);
    const std::uint32_t lat = space == Space::kShared ? 1 : latency;
    EXPECT_EQ(round.duration(), sim::round_time(round.stages, lat));
    EXPECT_EQ(round.stages, sim::round_stages(addrs, width, space));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, EngineSweep,
                         ::testing::Combine(::testing::Values(4u, 8u, 16u),
                                            ::testing::Values(1u, 2u, 17u, 100u),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace hmm::sim
