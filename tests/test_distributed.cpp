/// Tests for the distributed permutation subsystem: band geometry
/// (`runtime::BandPlan`), schedule slicing (`runtime::BandPlanner`),
/// the extract/scatter block transposes, the SHARD_EXEC / SHARD_XCHG
/// wire codecs, and the full networked path — `net::DistributedPermuter`
/// fanning row bands out to real in-process `net::Server` shards that
/// exchange column blocks peer-to-peer, and the router's
/// `--distributed-max-bytes` path on top of it.
///
/// Ground truth everywhere is `perm::Permutation::apply` (the serial
/// oracle): a distributed result must be bit-identical to single-node,
/// for uint32 data and for float/double carried as 32-bit words.
/// Failure discipline is tested too: a shard that is dead at fan-out
/// fails the whole request typed (kUnavailable) and every surviving
/// shard releases its pooled staging (verified via pool-stats deltas).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/layout.hpp"
#include "core/permuter.hpp"
#include "cpu/kernels.hpp"
#include "net/client.hpp"
#include "net/distributed.hpp"
#include "net/protocol.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "perm/generators.hpp"
#include "perm/permutation.hpp"
#include "runtime/distributed.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/service.hpp"
#include "runtime/status.hpp"
#include "util/buffer_pool.hpp"
#include "util/thread_pool.hpp"

namespace hmm {
namespace {

using namespace std::chrono_literals;
using model::MachineParams;
using runtime::BandPlan;
using runtime::BandPlanner;
using runtime::Status;
using runtime::StatusCode;

// ------------------------------------------------------------- geometry

TEST(BandPlan, EvenSplitCoversEverythingOnce) {
  auto plan = BandPlan::build(64, 128, 4);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  const BandPlan& bp = plan.value();
  EXPECT_EQ(bp.rows(), 64u);
  EXPECT_EQ(bp.cols(), 128u);
  EXPECT_EQ(bp.shards(), 4u);

  // Row bands tile [0, rows) contiguously; col bands tile [0, cols).
  std::uint64_t next_row = 0, next_col = 0, total = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(bp.row_band(s).begin, next_row);
    EXPECT_EQ(bp.col_band(s).begin, next_col);
    EXPECT_GE(bp.row_band(s).rows(), 1u);
    EXPECT_GE(bp.col_band(s).rows(), 1u);
    next_row = bp.row_band(s).end;
    next_col = bp.col_band(s).end;
    EXPECT_EQ(bp.band_offset(s), total);
    total += bp.band_elements(s);
  }
  EXPECT_EQ(next_row, 64u);
  EXPECT_EQ(next_col, 128u);
  EXPECT_EQ(total, 64u * 128u);
}

TEST(BandPlan, UnevenSplitBalancesWithinOneRow) {
  auto plan = BandPlan::build(64, 64, 5);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  const BandPlan& bp = plan.value();
  std::uint64_t min_rows = ~0ull, max_rows = 0;
  std::uint64_t covered = 0;
  for (std::uint32_t s = 0; s < 5; ++s) {
    const std::uint64_t r = bp.row_band(s).rows();
    min_rows = std::min(min_rows, r);
    max_rows = std::max(max_rows, r);
    covered += r;
  }
  EXPECT_EQ(covered, 64u);
  EXPECT_LE(max_rows - min_rows, 1u);
}

TEST(BandPlan, ExchangeScheduleMovesEveryBlockExactlyOnce) {
  auto plan = BandPlan::build(32, 64, 3);
  ASSERT_TRUE(plan.ok());
  const BandPlan& bp = plan.value();
  for (std::uint32_t round : {1u, 2u}) {
    const auto sched = bp.exchange(round);
    ASSERT_EQ(sched.size(), 9u) << "round " << round;
    std::uint64_t moved = 0;
    std::vector<bool> seen(9, false);
    for (const runtime::BlockTransfer& t : sched) {
      const std::size_t key = t.src * 3 + t.dst;
      EXPECT_FALSE(seen[key]) << "duplicate (src,dst) in round " << round;
      seen[key] = true;
      moved += t.elements();
      EXPECT_EQ(&bp.block(round, t.src, t.dst), &t);
    }
    // Every element of the matrix crosses the exchange exactly once.
    EXPECT_EQ(moved, 32u * 64u) << "round " << round;
  }
}

TEST(BandPlan, RejectsInfeasibleSplits) {
  EXPECT_FALSE(BandPlan::build(64, 64, 0).ok());
  EXPECT_FALSE(BandPlan::build(64, 64, 65).ok());  // > kMaxShards
  EXPECT_FALSE(BandPlan::build(4, 64, 8).ok());    // shards > rows
  EXPECT_TRUE(BandPlan::build(4, 64, 4).ok());
}

// ------------------------------------------------- extract/scatter blocks

/// Running a full round's extract+scatter over all (src, dst) pairs
/// must realize exactly a matrix transpose across band boundaries.
TEST(BandBlocks, Round1RealizesTheTranspose) {
  const std::uint64_t rows = 32, cols = 64;
  auto plan = BandPlan::build(rows, cols, 3);
  ASSERT_TRUE(plan.ok());
  const BandPlan& bp = plan.value();

  std::vector<std::uint32_t> y(rows * cols);
  for (std::uint64_t i = 0; i < y.size(); ++i) y[i] = static_cast<std::uint32_t>(i * 2654435761u);
  std::vector<std::uint32_t> z(rows * cols, 0);

  std::vector<std::uint32_t> block;
  for (std::uint32_t src = 0; src < 3; ++src) {
    const std::span<const std::uint32_t> y_band(y.data() + bp.band_offset(src),
                                                bp.band_elements(src));
    for (std::uint32_t dst = 0; dst < 3; ++dst) {
      block.assign(bp.block(1, src, dst).elements(), 0);
      runtime::extract_block_round1(bp, src, dst, y_band, block);
      const std::span<std::uint32_t> z_band(z.data() + bp.col_band(dst).begin * rows,
                                            bp.transposed_elements(dst));
      runtime::scatter_block_round1(bp, src, dst, block, z_band);
    }
  }
  // z, read as the cols x rows matrix, is y transposed.
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t c = 0; c < cols; ++c) {
      ASSERT_EQ(z[c * rows + r], y[r * cols + c]) << "(" << r << "," << c << ")";
    }
  }
}

TEST(BandBlocks, Round2RealizesTheInverseTranspose) {
  const std::uint64_t rows = 32, cols = 64;
  auto plan = BandPlan::build(rows, cols, 4);
  ASSERT_TRUE(plan.ok());
  const BandPlan& bp = plan.value();

  // w is the cols x rows view (pass-2 output); round 2 must put
  // w[c][r] at x[r][c].
  std::vector<std::uint32_t> w(rows * cols);
  for (std::uint64_t i = 0; i < w.size(); ++i) w[i] = static_cast<std::uint32_t>(i ^ 0x5bd1e995u);
  std::vector<std::uint32_t> x(rows * cols, 0);

  std::vector<std::uint32_t> block;
  for (std::uint32_t src = 0; src < 4; ++src) {
    const std::span<const std::uint32_t> w_band(w.data() + bp.col_band(src).begin * rows,
                                                bp.transposed_elements(src));
    for (std::uint32_t dst = 0; dst < 4; ++dst) {
      block.assign(bp.block(2, src, dst).elements(), 0);
      runtime::extract_block_round2(bp, src, dst, w_band, block);
      const std::span<std::uint32_t> x_band(x.data() + bp.band_offset(dst),
                                            bp.band_elements(dst));
      runtime::scatter_block_round2(bp, src, dst, block, x_band);
    }
  }
  for (std::uint64_t c = 0; c < cols; ++c) {
    for (std::uint64_t r = 0; r < rows; ++r) {
      ASSERT_EQ(x[r * cols + c], w[c * rows + r]) << "(" << c << "," << r << ")";
    }
  }
}

// -------------------------------------------------- planner band slices

TEST(BandPlanner, SlicesAreSubspansOfTheFullSchedules) {
  const std::uint64_t n = 1 << 12;
  runtime::PlanCache cache{runtime::PlanCache::Config{}, nullptr};
  auto h = cache.acquire<std::uint32_t>(perm::by_name("random", n, 5), MachineParams::gtx680(),
                                        core::Strategy::kScheduled);
  const core::ScheduledPlan* plan = h->plan();
  ASSERT_NE(plan, nullptr);

  auto built = BandPlanner::build(*plan, 3);
  ASSERT_TRUE(built.ok()) << built.status().to_string();
  const BandPlanner& planner = built.value();

  for (std::uint32_t s = 0; s < 3; ++s) {
    const runtime::BandPassView p1 = planner.pass1(s);
    const runtime::BandRange& rb = planner.bands().row_band(s);
    EXPECT_EQ(p1.rows, rb.rows());
    EXPECT_EQ(p1.cols, plan->pass1().cols);
    // Zero-copy: the view points into the full set's storage at the
    // band's rows — bit-identical to what a single node would run.
    EXPECT_EQ(p1.phat.data(), plan->pass1().phat.data() + rb.begin * plan->pass1().cols);
    EXPECT_EQ(p1.q.data(), plan->pass1().q.data() + rb.begin * plan->pass1().cols);

    const runtime::BandPassView p2 = planner.pass2(s);
    const runtime::BandRange& cb = planner.bands().col_band(s);
    EXPECT_EQ(p2.rows, cb.rows());
    EXPECT_EQ(p2.phat.data(), plan->pass2().phat.data() + cb.begin * plan->pass2().cols);

    const runtime::BandPassView p3 = planner.pass3(s);
    EXPECT_EQ(p3.rows, rb.rows());
    EXPECT_EQ(p3.phat.data(), plan->pass3().phat.data() + rb.begin * plan->pass3().cols);
  }
}

/// The whole distributed dataflow — band-local pass 1, block exchange,
/// band-local pass 2 on the transposed view, block exchange back,
/// band-local pass 3 — run in-process, must equal the serial oracle.
/// This pins the index math independently of any networking.
TEST(BandPlanner, LocalSimulationMatchesOracle) {
  const std::uint64_t n = 1 << 12;
  const perm::Permutation p = perm::by_name("random", n, 17);
  runtime::PlanCache cache{runtime::PlanCache::Config{}, nullptr};
  auto h = cache.acquire<std::uint32_t>(p, MachineParams::gtx680(), core::Strategy::kScheduled);
  const core::ScheduledPlan* plan = h->plan();
  ASSERT_NE(plan, nullptr);
  const std::uint64_t rows = plan->shape().rows, cols = plan->shape().cols;
  util::ThreadPool& pool = util::ThreadPool::global();

  for (std::uint32_t shards : {2u, 3u, 4u, 7u}) {
    auto built = BandPlanner::build(*plan, shards);
    ASSERT_TRUE(built.ok()) << built.status().to_string();
    const BandPlanner& planner = built.value();
    const BandPlan& bp = planner.bands();

    std::vector<std::uint32_t> in(n), y(n), z(n), w(n), x(n), out(n);
    for (std::uint64_t i = 0; i < n; ++i) in[i] = static_cast<std::uint32_t>(i * 0x9e3779b9u);

    std::vector<std::uint32_t> block;
    for (std::uint32_t s = 0; s < shards; ++s) {
      const runtime::BandPassView p1 = planner.pass1(s);
      cpu::row_wise_pass<std::uint32_t>(
          pool, {in.data() + bp.band_offset(s), bp.band_elements(s)},
          {y.data() + bp.band_offset(s), bp.band_elements(s)}, p1.rows, p1.cols, p1.phat, p1.q);
    }
    for (std::uint32_t src = 0; src < shards; ++src) {
      for (std::uint32_t dst = 0; dst < shards; ++dst) {
        block.assign(bp.block(1, src, dst).elements(), 0);
        runtime::extract_block_round1(bp, src, dst,
                                      {y.data() + bp.band_offset(src), bp.band_elements(src)},
                                      block);
        runtime::scatter_block_round1(
            bp, src, dst, block,
            {z.data() + bp.col_band(dst).begin * rows, bp.transposed_elements(dst)});
      }
    }
    for (std::uint32_t s = 0; s < shards; ++s) {
      const runtime::BandPassView p2 = planner.pass2(s);
      cpu::row_wise_pass<std::uint32_t>(
          pool, {z.data() + bp.col_band(s).begin * rows, bp.transposed_elements(s)},
          {w.data() + bp.col_band(s).begin * rows, bp.transposed_elements(s)}, p2.rows, p2.cols,
          p2.phat, p2.q);
    }
    for (std::uint32_t src = 0; src < shards; ++src) {
      for (std::uint32_t dst = 0; dst < shards; ++dst) {
        block.assign(bp.block(2, src, dst).elements(), 0);
        runtime::extract_block_round2(
            bp, src, dst, {w.data() + bp.col_band(src).begin * rows, bp.transposed_elements(src)},
            block);
        runtime::scatter_block_round2(bp, src, dst, block,
                                      {x.data() + bp.band_offset(dst), bp.band_elements(dst)});
      }
    }
    for (std::uint32_t s = 0; s < shards; ++s) {
      const runtime::BandPassView p3 = planner.pass3(s);
      cpu::row_wise_pass<std::uint32_t>(
          pool, {x.data() + bp.band_offset(s), bp.band_elements(s)},
          {out.data() + bp.band_offset(s), bp.band_elements(s)}, p3.rows, p3.cols, p3.phat,
          p3.q);
    }

    std::vector<std::uint32_t> expect(n);
    p.apply<std::uint32_t>({in.data(), n}, {expect.data(), n});
    EXPECT_EQ(out, expect) << "shards=" << shards << " rows=" << rows << " cols=" << cols;
  }
}

// --------------------------------------------------------------- codecs

net::ShardExecRequest sample_exec() {
  net::ShardExecRequest req;
  req.session_id = 0x1122334455667788ull;
  req.plan_id = 0xdeadbeefcafef00dull;
  req.deadline_ms = 1500;
  req.shard_index = 1;
  req.rows = 64;
  req.cols = 128;
  req.peers = {{"127.0.0.1", 7001}, {"10.0.0.2", 7002}, {"shard-3.local", 7003}};
  req.band.resize(256);
  for (std::size_t i = 0; i < req.band.size(); ++i) {
    req.band[i] = static_cast<std::uint32_t>(i * 977u);
  }
  return req;
}

TEST(ShardCodec, ExecRoundTripsOwningAndView) {
  const net::ShardExecRequest req = sample_exec();
  const std::vector<std::uint8_t> bytes = req.encode();

  auto owned = net::ShardExecRequest::decode(bytes, 1 << 20);
  ASSERT_TRUE(owned.ok()) << owned.status().to_string();
  EXPECT_EQ(owned.value().session_id, req.session_id);
  EXPECT_EQ(owned.value().plan_id, req.plan_id);
  EXPECT_EQ(owned.value().deadline_ms, req.deadline_ms);
  EXPECT_EQ(owned.value().shard_index, req.shard_index);
  EXPECT_EQ(owned.value().rows, req.rows);
  EXPECT_EQ(owned.value().cols, req.cols);
  ASSERT_EQ(owned.value().peers.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(owned.value().peers[i].host, req.peers[i].host);
    EXPECT_EQ(owned.value().peers[i].port, req.peers[i].port);
  }
  EXPECT_EQ(owned.value().band, req.band);

  auto view = net::ShardExecRequestView::decode(bytes, 1 << 20);
  ASSERT_TRUE(view.ok()) << view.status().to_string();
  EXPECT_EQ(view.value().shard_count(), 3u);
  ASSERT_EQ(view.value().band.count, req.band.size());
  // The band lands on an 8-byte payload offset by construction, so the
  // borrowing decode can read it in place on little-endian hosts.
  std::vector<std::uint32_t> copied(view.value().band.count);
  view.value().band.copy_to(copied);
  EXPECT_EQ(copied, req.band);
}

TEST(ShardCodec, ExecRejectsHostileInputs) {
  const net::ShardExecRequest req = sample_exec();
  const std::vector<std::uint8_t> good = req.encode();
  ASSERT_TRUE(net::ShardExecRequest::decode(good, 1 << 20).ok());

  const auto expect_reject = [&](std::vector<std::uint8_t> bytes, const char* what) {
    auto r = net::ShardExecRequest::decode(bytes, 1 << 20);
    EXPECT_FALSE(r.ok()) << what;
    if (!r.ok()) EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << what;
    auto v = net::ShardExecRequestView::decode(bytes, 1 << 20);
    EXPECT_FALSE(v.ok()) << what << " (view)";
  };

  // Truncations at every structural boundary.
  expect_reject({}, "empty");
  expect_reject({good.begin(), good.begin() + 20}, "truncated header");
  expect_reject({good.begin(), good.begin() + 60}, "truncated peer table");
  expect_reject({good.begin(), good.end() - 4}, "truncated band");

  // Field tampering (offsets fixed by the v1 layout).
  auto tamper = [&](std::size_t offset, std::uint8_t value, const char* what) {
    std::vector<std::uint8_t> bad = good;
    bad[offset] = value;
    expect_reject(std::move(bad), what);
  };
  tamper(0, 99, "wrong version");
  tamper(4, 2, "wrong element width");
  tamper(32, 0, "zero shard count");
  tamper(32, 65, "shard count over wire cap");
  tamper(28, 7, "shard index >= count");
  tamper(36, 1, "nonzero reserved");
  tamper(40, 0, "zero rows");

  // Element-count cap: the same frame must be refused when the reader's
  // budget is below the band size.
  auto capped = net::ShardExecRequest::decode(good, req.band.size() - 1);
  EXPECT_FALSE(capped.ok());

  // Band bytes must match the declared count exactly — no trailing junk.
  std::vector<std::uint8_t> oversized = good;
  oversized.insert(oversized.end(), {0, 0, 0, 0});
  EXPECT_FALSE(net::ShardExecRequest::decode(oversized, 1 << 20).ok());
}

TEST(ShardCodec, XchgRoundTripsAndRejectsHostileInputs) {
  net::ShardXchgRequest req;
  req.session_id = 0xfeedface12345678ull;
  req.round = 2;
  req.src_shard = 5;
  req.block = {1u, 2u, 3u, 0xffffffffu};
  const std::vector<std::uint8_t> good = req.encode();

  auto owned = net::ShardXchgRequest::decode(good, 1 << 20);
  ASSERT_TRUE(owned.ok()) << owned.status().to_string();
  EXPECT_EQ(owned.value().session_id, req.session_id);
  EXPECT_EQ(owned.value().round, 2u);
  EXPECT_EQ(owned.value().src_shard, 5u);
  EXPECT_EQ(owned.value().block, req.block);

  auto view = net::ShardXchgRequestView::decode(good, 1 << 20);
  ASSERT_TRUE(view.ok()) << view.status().to_string();
  ASSERT_EQ(view.value().block.count, 4u);
  std::vector<std::uint32_t> copied(4);
  view.value().block.copy_to(copied);
  EXPECT_EQ(copied, req.block);

  EXPECT_FALSE(net::ShardXchgRequest::decode({good.begin(), good.begin() + 10}, 1 << 20).ok());
  EXPECT_FALSE(net::ShardXchgRequest::decode({good.begin(), good.end() - 2}, 1 << 20).ok());
  std::vector<std::uint8_t> bad_round = good;
  bad_round[8] = 3;  // round must be 1 or 2
  EXPECT_FALSE(net::ShardXchgRequest::decode(bad_round, 1 << 20).ok());
  EXPECT_FALSE(net::ShardXchgRequest::decode(good, 3).ok()) << "block over element cap";
}

// --------------------------------------------------- networked fixtures

/// One in-process permd shard (real Server over a real service).
struct Shard {
  std::unique_ptr<runtime::RobustPermuteService> service;
  std::unique_ptr<net::Server> server;
  std::uint16_t port = 0;

  void start(std::chrono::milliseconds exchange_timeout = 5'000ms,
             std::uint32_t max_payload = net::kDefaultMaxPayload) {
    service = std::make_unique<runtime::RobustPermuteService>(
        util::ThreadPool::global(), runtime::RobustPermuteService::Config{});
    net::Server::Config config;
    config.poll_interval = 10ms;
    config.shard_exchange_timeout = exchange_timeout;
    config.max_payload_bytes = max_payload;
    server = std::make_unique<net::Server>(*service, config);
    const Status started = server->start();
    ASSERT_TRUE(started.is_ok()) << started.to_string();
    port = server->port();
  }

  void stop() {
    if (server) server->stop();
  }

  /// Register `p` directly with this shard; returns the wire plan id.
  std::uint64_t submit(const perm::Permutation& p) {
    net::Client::Config c;
    c.host = "127.0.0.1";
    c.port = port;
    net::Client client(c);
    auto id = client.submit_plan(p);
    EXPECT_TRUE(id.ok()) << id.status().to_string();
    return id.ok() ? id.value() : 0;
  }
};

bool eventually(const std::function<bool()>& pred, std::chrono::milliseconds budget = 5'000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

/// Run one distributed execution through DistributedPermuter against
/// `shards.size()` live servers and return the concatenated output.
runtime::StatusOr<std::vector<std::uint32_t>> run_distributed(
    std::vector<Shard*> shards, const perm::Permutation& p,
    std::span<const std::uint32_t> data, std::vector<std::size_t>* transport_failures = nullptr,
    std::uint32_t max_payload = net::kDefaultMaxPayload,
    std::chrono::milliseconds io_timeout = 60'000ms) {
  const core::MatrixShape shape = core::shape_for(p.size(), 32);
  std::uint64_t plan_id = 0;
  for (Shard* s : shards) {
    if (s->server) plan_id = s->submit(p);
  }

  std::vector<net::ShardTarget> targets;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    targets.push_back(net::ShardTarget{"127.0.0.1", shards[i]->port, i});
  }

  net::DistributedPermuter::Config config;
  config.max_payload_bytes = max_payload;
  config.connect_timeout = 1'000ms;
  config.io_timeout = io_timeout;
  auto result = net::DistributedPermuter::execute(
      config, /*session_id=*/0x5e55'1011u + p.size(), plan_id, /*deadline_ms=*/0, shape.rows,
      shape.cols,
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(data.data()),
                                    data.size_bytes()),
      targets, [&](std::size_t idx) {
        if (transport_failures) transport_failures->push_back(idx);
      });
  if (!result.ok()) return result.status();

  std::vector<std::uint32_t> out;
  out.reserve(data.size());
  for (const net::DistributedPermuter::Band& band : result.value().bands) {
    const std::size_t begin = out.size();
    out.resize(begin + band.elements);
    std::memcpy(out.data() + begin, band.bytes.data(), band.bytes.size());
  }
  return out;
}

// ------------------------------------------------------- end-to-end wire

TEST(DistributedWire, TwoAndFourShardsMatchOracleUint32) {
  const std::uint64_t n = 1 << 14;
  const perm::Permutation p = perm::by_name("random", n, 23);
  std::vector<std::uint32_t> in(n), expect(n);
  for (std::uint64_t i = 0; i < n; ++i) in[i] = static_cast<std::uint32_t>(i * 0x85ebca6bu);
  p.apply<std::uint32_t>({in.data(), n}, {expect.data(), n});

  for (std::size_t count : {2u, 4u}) {
    std::vector<std::unique_ptr<Shard>> shards;
    std::vector<Shard*> ptrs;
    for (std::size_t i = 0; i < count; ++i) {
      shards.push_back(std::make_unique<Shard>());
      shards.back()->start();
      ptrs.push_back(shards.back().get());
    }
    auto out = run_distributed(ptrs, p, {in.data(), n});
    ASSERT_TRUE(out.ok()) << count << " shards: " << out.status().to_string();
    EXPECT_EQ(out.value(), expect) << count << " shards";
    for (auto& s : shards) {
      EXPECT_EQ(s->server->counters().shard_execs, 1u);
      EXPECT_EQ(s->server->counters().shard_aborts, 0u);
      // Every shard accepted one wire block per *other* peer per round
      // (its own block short-circuits locally, never hitting the wire).
      EXPECT_EQ(s->server->counters().shard_blocks, 2 * (count - 1));
      s->stop();
    }
  }
}

TEST(DistributedWire, FloatAndDoubleRideAsWordsBitIdentical) {
  // float: one word per element — the word permutation IS the element
  // permutation, so the wire path is exercised with float payload bits.
  {
    const std::uint64_t n = 1 << 12;
    const perm::Permutation p = perm::by_name("shuffle", n, 7);
    std::vector<float> a(n);
    for (std::uint64_t i = 0; i < n; ++i) a[i] = 0.5f + static_cast<float>(i) * 1.25f;
    std::vector<float> expect(n);
    p.apply<float>({a.data(), n}, {expect.data(), n});

    std::vector<std::uint32_t> words(n);
    std::memcpy(words.data(), a.data(), n * sizeof(float));

    std::vector<std::unique_ptr<Shard>> shards;
    std::vector<Shard*> ptrs;
    for (int i = 0; i < 3; ++i) {
      shards.push_back(std::make_unique<Shard>());
      shards.back()->start();
      ptrs.push_back(shards.back().get());
    }
    auto out = run_distributed(ptrs, p, {words.data(), n});
    ASSERT_TRUE(out.ok()) << out.status().to_string();
    EXPECT_EQ(std::memcmp(out.value().data(), expect.data(), n * sizeof(float)), 0);
    for (auto& s : shards) s->stop();
  }
  // double: two words per element. The word-level permutation
  // P_w(2i + j) = 2 P(i) + j over 2n words moves each double's word
  // pair together, so permuting the word view equals permuting doubles.
  {
    const std::uint64_t n = 1 << 12;
    const perm::Permutation p = perm::by_name("random", n, 9);
    util::aligned_vector<std::uint32_t> word_map(2 * n);
    for (std::uint64_t i = 0; i < n; ++i) {
      word_map[2 * i] = 2 * p(i);
      word_map[2 * i + 1] = 2 * p(i) + 1;
    }
    const perm::Permutation pw(std::move(word_map));

    std::vector<double> a(n);
    for (std::uint64_t i = 0; i < n; ++i) a[i] = 1.0 / (1.0 + static_cast<double>(i));
    std::vector<double> expect(n);
    p.apply<double>({a.data(), n}, {expect.data(), n});

    std::vector<std::uint32_t> words(2 * n);
    std::memcpy(words.data(), a.data(), n * sizeof(double));

    std::vector<std::unique_ptr<Shard>> shards;
    std::vector<Shard*> ptrs;
    for (int i = 0; i < 4; ++i) {
      shards.push_back(std::make_unique<Shard>());
      shards.back()->start();
      ptrs.push_back(shards.back().get());
    }
    auto out = run_distributed(ptrs, pw, {words.data(), 2 * n});
    ASSERT_TRUE(out.ok()) << out.status().to_string();
    EXPECT_EQ(std::memcmp(out.value().data(), expect.data(), n * sizeof(double)), 0);
    for (auto& s : shards) s->stop();
  }
}

TEST(DistributedWire, DeadShardFailsTypedAndLeaksNothing) {
  const std::uint64_t n = 1 << 12;
  const perm::Permutation p = perm::by_name("bit-reversal", n, 1);
  std::vector<std::uint32_t> in(n);
  for (std::uint64_t i = 0; i < n; ++i) in[i] = static_cast<std::uint32_t>(i);

  // Two live shards with a short exchange deadline, plus one target
  // that is already dead (started to claim a port, then stopped): the
  // live shards receive SHARD_EXEC naming the dead peer and must abort
  // their sessions, typed, releasing all pooled staging.
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<Shard*> ptrs;
  for (int i = 0; i < 2; ++i) {
    shards.push_back(std::make_unique<Shard>());
    shards.back()->start(/*exchange_timeout=*/500ms);
    ptrs.push_back(shards.back().get());
  }
  shards.push_back(std::make_unique<Shard>());
  shards.back()->start();
  shards.back()->stop();
  shards.back()->server.reset();  // port stays claimed by nobody — connects fail
  ptrs.push_back(shards.back().get());

  const std::uint64_t baseline = util::BufferPool::global().stats().outstanding_bytes;

  std::vector<std::size_t> transport_failures;
  auto out = run_distributed(ptrs, p, {in.data(), n}, &transport_failures);
  ASSERT_FALSE(out.ok()) << "a dead shard must fail the whole request";
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable) << out.status().to_string();
  // The dead target's failure was transport-level and attributed.
  EXPECT_NE(std::find(transport_failures.begin(), transport_failures.end(), 2u),
            transport_failures.end());

  // Every pooled staging byte on the survivors is released once their
  // sessions abort (bounded by the exchange timeout).
  EXPECT_TRUE(eventually([&] {
    return util::BufferPool::global().stats().outstanding_bytes <= baseline;
  })) << "pooled staging leaked after a mid-exchange abort";
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(shards[i]->server->counters().shard_aborts, 1u);
    EXPECT_EQ(shards[i]->server->counters().shard_execs, 0u);
  }
  for (auto& s : shards) s->stop();
}

// ------------------------------------------------------- routed serving

TEST(DistributedRouter, LargePermuteShardsTransparently) {
  const std::uint64_t n = 1 << 14;  // 64 KiB of element data
  std::vector<std::unique_ptr<Shard>> backends;
  net::Router::Config config;
  for (int i = 0; i < 4; ++i) {
    backends.push_back(std::make_unique<Shard>());
    backends.back()->start();
    config.backends.push_back(net::BackendAddress{"127.0.0.1", backends.back()->port});
  }
  // Shard any PERMUTE over 16 KiB: n * 4 bytes / 16 KiB = 4 bands.
  config.distributed_max_bytes = 16 << 10;
  config.connect_timeout = 1'000ms;
  config.io_timeout = 30'000ms;
  config.poll_interval = 10ms;
  net::Router router(std::move(config));
  ASSERT_TRUE(router.start().is_ok());

  net::Client::Config cc;
  cc.host = "127.0.0.1";
  cc.port = router.port();
  cc.io_timeout = 30'000ms;
  net::Client client(cc);

  const perm::Permutation p = perm::by_name("random", n, 31);
  auto plan = client.submit_plan(p);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();

  std::vector<std::uint32_t> a(n), b(n, 0), expect(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i ^ 0xc2b2ae35u);
  p.apply<std::uint32_t>({a.data(), n}, {expect.data(), n});

  const Status s = client.permute(plan.value(), {a.data(), n}, {b.data(), n});
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_EQ(b, expect);

  const net::Router::Snapshot snap = router.snapshot();
  EXPECT_EQ(snap.dist_requests, 1u);
  EXPECT_EQ(snap.dist_failures, 0u);
  EXPECT_EQ(snap.dist_bytes, n * 4);
  // The data really was sharded: multiple backends ran a band.
  std::size_t executed = 0;
  for (auto& be : backends) {
    executed += be->server->counters().shard_execs > 0 ? 1 : 0;
  }
  EXPECT_GE(executed, 2u);

  // A small request on the same plan takes the single-node path.
  const std::uint64_t small_n = 1 << 10;
  const perm::Permutation ps = perm::by_name("bit-reversal", small_n, 1);
  auto small_plan = client.submit_plan(ps);
  ASSERT_TRUE(small_plan.ok());
  std::vector<std::uint32_t> sa(small_n, 1), sb(small_n, 0);
  ASSERT_TRUE(client.permute(small_plan.value(), {sa.data(), small_n}, {sb.data(), small_n})
                  .is_ok());
  EXPECT_EQ(router.snapshot().dist_requests, 1u) << "small request must not shard";

  router.stop();
  for (auto& be : backends) be->stop();
}

// Gated big-n run (64 MiB of element data — above the default 64 MiB
// frame cap, so every layer's payload ceiling must be raised): set
// HMM_DISTRIBUTED_BIG=1 to run, e.g. in the Release CI job.
TEST(DistributedRouter, BigPermuteAboveSingleFrameCap) {
  if (std::getenv("HMM_DISTRIBUTED_BIG") == nullptr) {
    GTEST_SKIP() << "set HMM_DISTRIBUTED_BIG=1 to run the 2^24 distributed check";
  }
  const std::uint64_t n = 1ull << 24;
  const std::uint32_t big_payload = 80u << 20;

  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<Shard*> ptrs;
  for (int i = 0; i < 4; ++i) {
    shards.push_back(std::make_unique<Shard>());
    // Generous budgets: each shard cold-compiles the full 2^24 plan on
    // first use, which dwarfs the exchange itself.
    shards.back()->start(/*exchange_timeout=*/600'000ms, big_payload);
    ptrs.push_back(shards.back().get());
  }

  const perm::Permutation p = perm::by_name("random", n, 3);
  std::vector<std::uint32_t> in(n), expect(n);
  for (std::uint64_t i = 0; i < n; ++i) in[i] = static_cast<std::uint32_t>(i * 0x9e3779b9u);
  p.apply<std::uint32_t>({in.data(), n}, {expect.data(), n});

  auto out = run_distributed(ptrs, p, {in.data(), n}, nullptr, big_payload, 600'000ms);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_EQ(out.value() == expect, true) << "2^24 distributed result diverged from oracle";
  for (auto& s : shards) s->stop();
}

}  // namespace
}  // namespace hmm
