#include <gtest/gtest.h>

#include "core/conventional.hpp"
#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "model/cost.hpp"
#include "perm/distribution.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"

namespace hmm::core {
namespace {

using model::MachineParams;

template <class T>
void expect_permuted(const perm::Permutation& p, std::span<const T> a, std::span<const T> b) {
  for (std::uint64_t i = 0; i < p.size(); ++i) {
    ASSERT_EQ(b[p(i)], a[i]) << "element " << i;
  }
}

TEST(ConventionalCpu, DDesignatedCorrect) {
  util::ThreadPool pool(2);
  const std::uint64_t n = 1 << 12;
  const perm::Permutation p = perm::by_name("random", n, 1);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n, -1.f);
  d_designated_cpu<float>(pool, a, b, p);
  expect_permuted<float>(p, a, b);
}

TEST(ConventionalCpu, SDesignatedCorrect) {
  util::ThreadPool pool(2);
  const std::uint64_t n = 1 << 12;
  const perm::Permutation p = perm::by_name("random", n, 2);
  const auto a = test::iota_data<double>(n);
  util::aligned_vector<double> b(n, -1.0);
  s_designated_cpu<double>(pool, a, b, p.inverse());
  expect_permuted<double>(p, a, b);
}

TEST(ConventionalSim, DDesignatedTimeMatchesLemma4) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 256;
  for (const auto& name : test::families_for(n)) {
    const perm::Permutation p = perm::by_name(name, n);
    sim::HmmSim sim(mp);
    const auto a = test::iota_data<float>(n);
    util::aligned_vector<float> b(n, -1.f);
    const std::uint64_t t = d_designated_sim<float>(sim, a, b, p);
    expect_permuted<float>(p, a, b);
    EXPECT_EQ(t, model::d_designated_time(n, perm::distribution(p, mp.width), mp)) << name;
    EXPECT_TRUE(sim.stats().declarations_hold()) << name;
  }
}

TEST(ConventionalSim, SDesignatedTimeMatchesLemma4) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 256;
  for (const auto& name : test::families_for(n)) {
    const perm::Permutation p = perm::by_name(name, n);
    sim::HmmSim sim(mp);
    const auto a = test::iota_data<float>(n);
    util::aligned_vector<float> b(n, -1.f);
    const std::uint64_t t = s_designated_sim<float>(sim, a, b, p.inverse());
    expect_permuted<float>(p, a, b);
    EXPECT_EQ(t, model::s_designated_time(n, perm::inverse_distribution(p, mp.width), mp))
        << name;
  }
}

TEST(ConventionalSim, RoundInventoryMatchesTable1) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const perm::Permutation p = perm::bit_reversal(256);
  sim::HmmSim sim(mp);
  const auto a = test::iota_data<float>(256);
  util::aligned_vector<float> b(256);
  d_designated_sim<float>(sim, a, b, p);
  const auto counts = sim.stats().observed_counts();
  EXPECT_EQ(counts.coalesced_read, model::rounds::d_designated.coalesced_read);
  EXPECT_EQ(counts.casual_write_global, model::rounds::d_designated.casual_write_global);
  EXPECT_EQ(counts.total_rounds(), 3u);
}

TEST(ScheduledCpu, CorrectForAllFamilies) {
  util::ThreadPool pool(2);
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 1 << 10;
  for (const auto& name : test::families_for(n)) {
    const perm::Permutation p = perm::by_name(name, n);
    const ScheduledPlan plan = ScheduledPlan::build(p, mp);
    const auto a = test::iota_data<float>(n);
    util::aligned_vector<float> b(n, -1.f), s1(n), s2(n);
    scheduled_cpu<float>(pool, plan, a, b, s1, s2);
    expect_permuted<float>(p, a, b);
  }
}

TEST(ScheduledCpu, LeanVariantMatchesTwoScratch) {
  util::ThreadPool pool(2);
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 1 << 10;
  for (const auto& name : test::families_for(n)) {
    const perm::Permutation p = perm::by_name(name, n);
    const ScheduledPlan plan = ScheduledPlan::build(p, mp);
    const auto a = test::iota_data<float>(n);
    util::aligned_vector<float> b1(n, -1.f), b2(n, -1.f), s1(n), s2(n);
    scheduled_cpu<float>(pool, plan, a, b1, s1, s2);
    scheduled_cpu_lean<float>(pool, plan, a, b2, s1);
    EXPECT_EQ(b1, b2) << name;
    expect_permuted<float>(p, a, b2);
  }
}

TEST(ScheduledCpu, DoubleElements) {
  util::ThreadPool pool(2);
  const MachineParams mp = MachineParams::tiny(8, 9, 4);
  const std::uint64_t n = 1 << 12;
  const perm::Permutation p = perm::by_name("random", n, 3);
  const ScheduledPlan plan = ScheduledPlan::build(p, mp);
  const auto a = test::iota_data<double>(n);
  util::aligned_vector<double> b(n, -1.0), s1(n), s2(n);
  scheduled_cpu<double>(pool, plan, a, b, s1, s2);
  expect_permuted<double>(p, a, b);
}

TEST(ScheduledSim, CorrectAndFullyCoalesced) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 1 << 10;
  for (const auto& name : test::families_for(n)) {
    const perm::Permutation p = perm::by_name(name, n);
    const ScheduledPlan plan = ScheduledPlan::build(p, mp);
    sim::HmmSim sim(mp);
    const auto a = test::iota_data<float>(n);
    util::aligned_vector<float> b(n, -1.f);
    scheduled_sim<float>(sim, plan, a, b);
    expect_permuted<float>(p, a, b);

    // The paper's key structural claim: all 16 global rounds coalesced,
    // all 16 shared rounds conflict-free, zero casual rounds.
    const auto counts = sim.stats().observed_counts();
    EXPECT_EQ(counts.coalesced_read, 11u) << name;
    EXPECT_EQ(counts.coalesced_write, 5u) << name;
    EXPECT_EQ(counts.conflict_free_read, 8u) << name;
    EXPECT_EQ(counts.conflict_free_write, 8u) << name;
    EXPECT_EQ(counts.casual_read_global + counts.casual_write_global, 0u) << name;
    EXPECT_TRUE(sim.stats().declarations_hold()) << name;
  }
}

TEST(ScheduledSim, TimeIndependentOfPermutation) {
  // Theorem 9 empirically: same n => exactly the same simulated time,
  // whatever the permutation.
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 1 << 10;
  std::uint64_t reference_time = 0;
  for (const auto& name : test::families_for(n)) {
    const perm::Permutation p = perm::by_name(name, n);
    const ScheduledPlan plan = ScheduledPlan::build(p, mp);
    sim::HmmSim sim(mp);
    const std::uint64_t t = scheduled_sim_rounds(sim, plan);
    if (reference_time == 0) {
      reference_time = t;
    } else {
      EXPECT_EQ(t, reference_time) << name;
    }
  }
}

TEST(ScheduledSim, TimeMatchesTheorem9ForSquare) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 1 << 10;  // 32 x 32: square, rows divisible by dmms
  const perm::Permutation p = perm::bit_reversal(n);
  const ScheduledPlan plan = ScheduledPlan::build(p, mp);
  sim::HmmSim sim(mp);
  const std::uint64_t t = scheduled_sim_rounds(sim, plan);
  EXPECT_EQ(t, model::scheduled_time(n, mp));
}

TEST(ScheduledSim, BeatsConventionalOnHighDistribution) {
  const MachineParams mp = MachineParams::gtx680();
  const std::uint64_t n = 1 << 16;
  const perm::Permutation p = perm::bit_reversal(n);
  const ScheduledPlan plan = ScheduledPlan::build(p, mp);

  sim::HmmSim sim_sched(mp);
  const std::uint64_t t_sched = scheduled_sim_rounds(sim_sched, plan);
  sim::HmmSim sim_conv(mp);
  const std::uint64_t t_conv = d_designated_sim_rounds(sim_conv, p);
  EXPECT_LT(t_sched, t_conv);
}

TEST(ScheduledSim, LosesToConventionalOnIdentical) {
  const MachineParams mp = MachineParams::gtx680();
  const std::uint64_t n = 1 << 16;
  const perm::Permutation p = perm::identical(n);
  const ScheduledPlan plan = ScheduledPlan::build(p, mp);

  sim::HmmSim sim_sched(mp);
  const std::uint64_t t_sched = scheduled_sim_rounds(sim_sched, plan);
  sim::HmmSim sim_conv(mp);
  const std::uint64_t t_conv = d_designated_sim_rounds(sim_conv, p);
  EXPECT_GT(t_sched, t_conv);
}

}  // namespace
}  // namespace hmm::core
