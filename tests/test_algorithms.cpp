#include <gtest/gtest.h>

#include <numeric>

#include "exec/algorithms.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace hmm::exec {
namespace {

using model::MachineParams;

TEST(ReduceSum, MatchesSerialSum) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 1024;
  util::Xoshiro256 rng(3);
  util::aligned_vector<std::uint64_t> host(n);
  for (auto& v : host) v = rng.bounded(1000);
  const std::uint64_t expected = std::accumulate(host.begin(), host.end(), 0ull);

  Machine m(mp);
  auto data = m.alloc_global<std::uint64_t>(std::span<const std::uint64_t>{host.data(), n});
  const auto result = reduce_sum<std::uint64_t>(m, data, 64);
  EXPECT_EQ(result.value, expected);
  EXPECT_GT(result.time_units, 0u);
}

TEST(ReduceSum, SharedRoundsConflictFree) {
  const MachineParams mp = MachineParams::tiny(8, 20, 2);
  const std::uint64_t n = 4096;
  Machine m(mp);
  auto data = m.alloc_global<std::uint32_t>(n);
  reduce_sum<std::uint32_t>(m, data, 128);
  EXPECT_TRUE(m.sim().stats().declarations_hold());
  for (const auto& r : m.sim().stats().rounds) {
    if (r.space == model::Space::kShared) {
      EXPECT_EQ(r.observed, model::AccessClass::kConflictFree) << r.label;
    }
  }
}

TEST(ReduceSum, SingleBlock) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  Machine m(mp);
  const auto host = test::iota_data<std::uint64_t>(64);
  auto data = m.alloc_global<std::uint64_t>(std::span<const std::uint64_t>{host.data(), 64});
  const auto result = reduce_sum<std::uint64_t>(m, data, 64);
  EXPECT_EQ(result.value, 64ull * 63 / 2);
}

TEST(Reduce, MaxOperator) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 512;
  util::Xoshiro256 rng(13);
  util::aligned_vector<std::uint32_t> host(n);
  for (auto& v : host) v = static_cast<std::uint32_t>(rng.bounded(1 << 20));
  const std::uint32_t expected = *std::max_element(host.begin(), host.end());

  Machine m(mp);
  auto data = m.alloc_global<std::uint32_t>(std::span<const std::uint32_t>{host.data(), n});
  const auto result = reduce<std::uint32_t>(
      m, data, 64, [](std::uint32_t a, std::uint32_t b) { return std::max(a, b); }, 0u);
  EXPECT_EQ(result.value, expected);
}

TEST(ExclusiveScan, MatchesStdExclusiveScan) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 512;
  util::Xoshiro256 rng(21);
  util::aligned_vector<std::uint64_t> host(n);
  for (auto& v : host) v = rng.bounded(50);
  std::vector<std::uint64_t> expected(n);
  std::exclusive_scan(host.begin(), host.end(), expected.begin(), 7ull);

  Machine m(mp);
  auto input = m.alloc_global<std::uint64_t>(std::span<const std::uint64_t>{host.data(), n});
  const auto [out, time] = exclusive_scan<std::uint64_t>(m, input, 64, std::plus<>{}, 7ull);
  std::vector<std::uint64_t> got(n);
  m.read_back(out, std::span<std::uint64_t>{got.data(), n});
  EXPECT_EQ(got, expected);
  (void)time;
}

TEST(InclusiveScan, MaxScan) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 256;
  util::Xoshiro256 rng(30);
  util::aligned_vector<std::uint32_t> host(n);
  for (auto& v : host) v = static_cast<std::uint32_t>(rng.bounded(1000));
  Machine m(mp);
  auto input = m.alloc_global<std::uint32_t>(std::span<const std::uint32_t>{host.data(), n});
  const auto [out, time] = inclusive_scan<std::uint32_t>(
      m, input, 64, [](std::uint32_t a, std::uint32_t b) { return std::max(a, b); });
  std::vector<std::uint32_t> got(n);
  m.read_back(out, std::span<std::uint32_t>{got.data(), n});
  std::uint32_t running = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    running = std::max(running, host[i]);
    EXPECT_EQ(got[i], running) << i;
  }
  (void)time;
}

TEST(InclusiveScan, MatchesStdScan) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 2048;
  util::Xoshiro256 rng(5);
  util::aligned_vector<std::uint64_t> host(n);
  for (auto& v : host) v = rng.bounded(100);
  std::vector<std::uint64_t> expected(n);
  std::inclusive_scan(host.begin(), host.end(), expected.begin());

  Machine m(mp);
  auto input = m.alloc_global<std::uint64_t>(std::span<const std::uint64_t>{host.data(), n});
  const auto [out, time] = inclusive_scan<std::uint64_t>(m, input, 64);
  std::vector<std::uint64_t> got(n);
  m.read_back(out, std::span<std::uint64_t>{got.data(), n});
  EXPECT_EQ(got, expected);
  EXPECT_GT(time, 0u);
}

TEST(InclusiveScan, ConstantInputGivesRamp) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 256;
  util::aligned_vector<std::uint32_t> host(n, 1u);
  Machine m(mp);
  auto input = m.alloc_global<std::uint32_t>(std::span<const std::uint32_t>{host.data(), n});
  const auto [out, time] = inclusive_scan<std::uint32_t>(m, input, 64);
  std::vector<std::uint32_t> got(n);
  m.read_back(out, std::span<std::uint32_t>{got.data(), n});
  for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(got[i], i + 1);
  (void)time;
}

TEST(InclusiveScan, TimeIsLogDepthOfCoalescedRounds) {
  // log2(n)+1 kernels, 3 global rounds each (bounded casual shifted
  // read): total time O(log n * (n/w + l)).
  const MachineParams mp = MachineParams::tiny(8, 50, 2);
  const std::uint64_t n = 4096;
  Machine m(mp);
  auto input = m.alloc_global<float>(n);
  const auto [out, time] = inclusive_scan<float>(m, input, 128);
  (void)out;
  const std::uint64_t coalesced = model::coalesced_round_time(n, mp);
  const std::uint64_t rounds_upper = (2 + 3 * 12) * (2 * coalesced);
  EXPECT_LT(time, rounds_upper);
  // The shifted reads at dist >= w are observed coalesced.
  std::uint64_t casual = 0;
  for (const auto& r : m.sim().stats().rounds) {
    casual += (r.observed == model::AccessClass::kCasual);
  }
  // Only the shifts with dist < w (log2(w) = 3 of them) may degrade,
  // and they cost at most 2 groups per warp.
  EXPECT_LE(casual, 3u);
}

}  // namespace
}  // namespace hmm::exec
