/// Differential battery for the SIMD kernel tiers: every vector
/// variant must be BIT-identical to the scalar oracle — not just
/// value-equal. Outputs are compared with memcmp, and the float/double
/// runs are seeded with raw random bit patterns (which include NaNs,
/// denormals, and negative zeros), so a variant that round-trips
/// values through arithmetic instead of moving bits would be caught.
/// Shapes deliberately include odd tails (cols not a multiple of any
/// lane width), single rows/columns, and the batched quad-lane
/// geometries the serving path uses.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cpu/dispatch.hpp"
#include "cpu/kernels.hpp"
#include "perm/generators.hpp"
#include "util/aligned_vector.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hmm::cpu {
namespace {

/// Fill with raw random bits reinterpreted as T: exercises every bit
/// pattern, including ones that are not valid arithmetic values.
template <class T>
util::aligned_vector<T> random_bits(std::uint64_t n, std::uint64_t seed) {
  util::aligned_vector<T> v(n);
  util::Xoshiro256 rng(seed);
  for (auto& x : v) {
    const std::uint64_t bits = rng.next();
    std::memcpy(&x, &bits, sizeof(T));
  }
  return v;
}

/// Random permutation of [0, n) as uint16 (for row schedules).
std::vector<std::uint16_t> random_perm16(std::uint64_t n, util::Xoshiro256& rng) {
  std::vector<std::uint16_t> p(n);
  for (std::uint64_t j = 0; j < n; ++j) p[j] = static_cast<std::uint16_t>(j);
  for (std::uint64_t j = n - 1; j > 0; --j) std::swap(p[j], p[rng.bounded(j + 1)]);
  return p;
}

template <class T>
void expect_bit_identical(const util::aligned_vector<T>& got,
                          const util::aligned_vector<T>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(T)), 0) << what;
}

/// Run `fn` with the given variant temporarily installed.
template <class Fn>
void with_variant(KernelVariant v, Fn&& fn) {
  const KernelVariant prev = kernel_variant();
  ASSERT_EQ(set_kernel_variant(v), v);
  fn();
  set_kernel_variant(prev);
}

/// Fixture parameterized by the variant under test; skips (not fails)
/// when the CPU or build cannot run it, so CI on older machines stays
/// green while still proving the scalar leg.
class SimdVariantTest : public ::testing::TestWithParam<KernelVariant> {
 protected:
  void SetUp() override {
    prev_ = kernel_variant();
    if (set_kernel_variant(GetParam()) != GetParam()) {
      set_kernel_variant(prev_);
      GTEST_SKIP() << "variant " << to_string(GetParam())
                   << " unsupported on this CPU/build";
    }
  }
  void TearDown() override { set_kernel_variant(prev_); }

  KernelVariant prev_{};
};

constexpr std::uint64_t kRowCounts[] = {1, 3, 17};
constexpr std::uint64_t kColCounts[] = {1, 7, 16, 24, 100, 257, 1000};

template <class T>
void run_row_pass_differential(KernelVariant variant) {
  util::ThreadPool pool(2);
  for (const std::uint64_t rows : kRowCounts) {
    for (const std::uint64_t cols : kColCounts) {
      const std::uint64_t n = rows * cols;
      util::Xoshiro256 rng(rows * 100003 + cols);
      std::vector<std::uint16_t> phat(n), q(n);
      for (std::uint64_t r = 0; r < rows; ++r) {
        const auto ph = random_perm16(cols, rng);
        const auto qq = random_perm16(cols, rng);
        std::copy(ph.begin(), ph.end(), phat.begin() + static_cast<std::ptrdiff_t>(r * cols));
        std::copy(qq.begin(), qq.end(), q.begin() + static_cast<std::ptrdiff_t>(r * cols));
      }
      const auto in = random_bits<T>(n, n + sizeof(T));
      util::aligned_vector<T> want(n), got(n);
      with_variant(KernelVariant::kScalar, [&] {
        row_wise_pass<T>(pool, in, want, rows, cols, phat, q);
      });
      with_variant(variant, [&] {
        row_wise_pass<T>(pool, in, got, rows, cols, phat, q);
      });
      expect_bit_identical(got, want, "row_wise_pass");
    }
  }
}

TEST_P(SimdVariantTest, RowPassBitIdenticalU32) {
  run_row_pass_differential<std::uint32_t>(GetParam());
}
TEST_P(SimdVariantTest, RowPassBitIdenticalU64) {
  run_row_pass_differential<std::uint64_t>(GetParam());
}
TEST_P(SimdVariantTest, RowPassBitIdenticalFloat) {
  run_row_pass_differential<float>(GetParam());
}
TEST_P(SimdVariantTest, RowPassBitIdenticalDouble) {
  run_row_pass_differential<double>(GetParam());
}

template <class T>
void run_row_pass_batched_differential(KernelVariant variant) {
  util::ThreadPool pool(2);
  const std::uint64_t rows = 5;
  for (const std::uint64_t cols : {24ull, 100ull, 256ull}) {
    for (const std::uint64_t lanes : {1ull, 2ull, 4ull, 5ull, 9ull}) {
      const std::uint64_t n = rows * cols;
      util::Xoshiro256 rng(cols * 31 + lanes);
      std::vector<std::uint16_t> phat(n), q(n);
      for (std::uint64_t r = 0; r < rows; ++r) {
        const auto ph = random_perm16(cols, rng);
        const auto qq = random_perm16(cols, rng);
        std::copy(ph.begin(), ph.end(), phat.begin() + static_cast<std::ptrdiff_t>(r * cols));
        std::copy(qq.begin(), qq.end(), q.begin() + static_cast<std::ptrdiff_t>(r * cols));
      }
      std::vector<util::aligned_vector<T>> ins, wants, gots;
      std::vector<const T*> srcs;
      std::vector<T*> want_ptrs, got_ptrs;
      for (std::uint64_t l = 0; l < lanes; ++l) {
        ins.push_back(random_bits<T>(n, l * 7919 + cols));
        wants.emplace_back(n);
        gots.emplace_back(n);
      }
      for (std::uint64_t l = 0; l < lanes; ++l) {
        srcs.push_back(ins[l].data());
        want_ptrs.push_back(wants[l].data());
        got_ptrs.push_back(gots[l].data());
      }
      with_variant(KernelVariant::kScalar, [&] {
        row_wise_pass_batched<T>(pool, srcs, want_ptrs, rows, cols, phat, q);
      });
      with_variant(variant, [&] {
        row_wise_pass_batched<T>(pool, srcs, got_ptrs, rows, cols, phat, q);
      });
      for (std::uint64_t l = 0; l < lanes; ++l) {
        expect_bit_identical(gots[l], wants[l], "row_wise_pass_batched");
      }
    }
  }
}

TEST_P(SimdVariantTest, RowPassBatchedBitIdenticalU32) {
  run_row_pass_batched_differential<std::uint32_t>(GetParam());
}
TEST_P(SimdVariantTest, RowPassBatchedBitIdenticalU64) {
  run_row_pass_batched_differential<std::uint64_t>(GetParam());
}
TEST_P(SimdVariantTest, RowPassBatchedBitIdenticalFloat) {
  run_row_pass_batched_differential<float>(GetParam());
}
TEST_P(SimdVariantTest, RowPassBatchedBitIdenticalDouble) {
  run_row_pass_batched_differential<double>(GetParam());
}

template <class T>
void run_transpose_differential(KernelVariant variant) {
  util::ThreadPool pool(2);
  const std::pair<std::uint64_t, std::uint64_t> shapes[] = {
      {7, 13}, {32, 32}, {100, 52}, {1, 128}, {128, 1}, {64, 16}, {33, 17}};
  for (const auto [rows, cols] : shapes) {
    for (const std::uint64_t tile : {1ull, 5ull, 16ull, 32ull}) {
      const std::uint64_t n = rows * cols;
      const auto in = random_bits<T>(n, rows * 31 + cols * 7 + tile);
      util::aligned_vector<T> want(n), got(n);
      with_variant(KernelVariant::kScalar, [&] {
        transpose_blocked<T>(pool, in, want, rows, cols, tile);
      });
      with_variant(variant, [&] {
        transpose_blocked<T>(pool, in, got, rows, cols, tile);
      });
      expect_bit_identical(got, want, "transpose_blocked");
    }
  }
}

TEST_P(SimdVariantTest, TransposeBitIdenticalU32) {
  run_transpose_differential<std::uint32_t>(GetParam());
}
TEST_P(SimdVariantTest, TransposeBitIdenticalU64) {
  run_transpose_differential<std::uint64_t>(GetParam());
}
TEST_P(SimdVariantTest, TransposeBitIdenticalFloat) {
  run_transpose_differential<float>(GetParam());
}
TEST_P(SimdVariantTest, TransposeBitIdenticalDouble) {
  run_transpose_differential<double>(GetParam());
}

template <class T>
void run_transpose_batched_differential(KernelVariant variant) {
  util::ThreadPool pool(2);
  const std::uint64_t rows = 33, cols = 21;
  const std::uint64_t n = rows * cols;
  for (const std::uint64_t lanes : {1ull, 2ull, 4ull, 5ull, 9ull}) {
    std::vector<util::aligned_vector<T>> ins, wants, gots;
    std::vector<const T*> srcs;
    std::vector<T*> want_ptrs, got_ptrs;
    for (std::uint64_t l = 0; l < lanes; ++l) {
      ins.push_back(random_bits<T>(n, l * 104729 + lanes));
      wants.emplace_back(n);
      gots.emplace_back(n);
    }
    for (std::uint64_t l = 0; l < lanes; ++l) {
      srcs.push_back(ins[l].data());
      want_ptrs.push_back(wants[l].data());
      got_ptrs.push_back(gots[l].data());
    }
    with_variant(KernelVariant::kScalar, [&] {
      transpose_blocked_batched<T>(pool, srcs, want_ptrs, rows, cols, 16);
    });
    with_variant(variant, [&] {
      transpose_blocked_batched<T>(pool, srcs, got_ptrs, rows, cols, 16);
    });
    for (std::uint64_t l = 0; l < lanes; ++l) {
      expect_bit_identical(gots[l], wants[l], "transpose_blocked_batched");
    }
  }
}

TEST_P(SimdVariantTest, TransposeBatchedBitIdenticalU32) {
  run_transpose_batched_differential<std::uint32_t>(GetParam());
}
TEST_P(SimdVariantTest, TransposeBatchedBitIdenticalU64) {
  run_transpose_batched_differential<std::uint64_t>(GetParam());
}
TEST_P(SimdVariantTest, TransposeBatchedBitIdenticalFloat) {
  run_transpose_batched_differential<float>(GetParam());
}
TEST_P(SimdVariantTest, TransposeBatchedBitIdenticalDouble) {
  run_transpose_batched_differential<double>(GetParam());
}

template <class T>
void run_conventional_differential(KernelVariant variant) {
  util::ThreadPool pool(2);
  const std::uint64_t n = 50021;  // odd: exercises every tail path
  const perm::Permutation p = perm::by_name("random", n, 11);
  const auto a = random_bits<T>(n, n);
  util::aligned_vector<T> want_s(n), got_s(n), want_g(n), got_g(n);
  with_variant(KernelVariant::kScalar, [&] {
    scatter<T>(pool, a, want_s, p.data());
    gather<T>(pool, a, want_g, p.data());
  });
  with_variant(variant, [&] {
    scatter<T>(pool, a, got_s, p.data());
    gather<T>(pool, a, got_g, p.data());
  });
  expect_bit_identical(got_s, want_s, "scatter");
  expect_bit_identical(got_g, want_g, "gather");
}

TEST_P(SimdVariantTest, GatherScatterBitIdenticalU32) {
  run_conventional_differential<std::uint32_t>(GetParam());
}
TEST_P(SimdVariantTest, GatherScatterBitIdenticalU64) {
  run_conventional_differential<std::uint64_t>(GetParam());
}
TEST_P(SimdVariantTest, GatherScatterBitIdenticalFloat) {
  run_conventional_differential<float>(GetParam());
}
TEST_P(SimdVariantTest, GatherScatterBitIdenticalDouble) {
  run_conventional_differential<double>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(SimdKernels, SimdVariantTest,
                         ::testing::Values(KernelVariant::kAvx2, KernelVariant::kAvx512),
                         [](const ::testing::TestParamInfo<KernelVariant>& info) {
                           return std::string(to_string(info.param));
                         });

// ---- dispatcher behavior ---------------------------------------------

TEST(KernelDispatch, BestVariantIsSupported) {
  const KernelVariant best = best_kernel_variant();
  EXPECT_EQ(set_kernel_variant(best), best);
}

TEST(KernelDispatch, ScalarAlwaysSelectable) {
  const KernelVariant prev = kernel_variant();
  EXPECT_EQ(set_kernel_variant(KernelVariant::kScalar), KernelVariant::kScalar);
  EXPECT_EQ(kernel_variant(), KernelVariant::kScalar);
  // No ops table in scalar mode: every kernel takes the oracle loop.
  EXPECT_EQ(active_kernel_ops(4), nullptr);
  EXPECT_EQ(active_kernel_ops(8), nullptr);
  set_kernel_variant(prev);
}

TEST(KernelDispatch, UnsupportedWidthsRunScalar) {
  // 2-byte elements have no SIMD table in any tier.
  EXPECT_EQ(active_kernel_ops(2), nullptr);
  EXPECT_EQ(active_kernel_ops(16), nullptr);
}

TEST(KernelDispatch, RequestsClampDownward) {
  const KernelVariant prev = kernel_variant();
  const CpuFeatures& f = cpu_features();
  const KernelVariant got = set_kernel_variant(KernelVariant::kAvx512);
  if (f.avx512) {
    EXPECT_EQ(got, KernelVariant::kAvx512);
  } else if (f.avx2) {
    EXPECT_EQ(got, KernelVariant::kAvx2);
  } else {
    EXPECT_EQ(got, KernelVariant::kScalar);
  }
  set_kernel_variant(prev);
}

}  // namespace
}  // namespace hmm::cpu
