#include <gtest/gtest.h>

#include <sstream>

#include "core/diagnose.hpp"
#include "model/cost.hpp"
#include "perm/generators.hpp"

namespace hmm::core {
namespace {

using model::MachineParams;

TEST(Diagnose, IdentityPermutation) {
  const MachineParams mp = MachineParams::gtx680();
  const std::uint64_t n = 1 << 16;
  const Diagnosis d = diagnose(perm::identical(n), mp);
  EXPECT_TRUE(d.is_identity);
  EXPECT_TRUE(d.is_involution);
  EXPECT_EQ(d.dist_forward, n / mp.width);
  EXPECT_DOUBLE_EQ(d.dist_forward_ratio, 1.0 / mp.width);
  EXPECT_EQ(d.cycles.fixed_points, n);
  EXPECT_EQ(d.recommendation, "d-designated");  // ties resolve to D first
}

TEST(Diagnose, BitReversalRecommendsScheduled) {
  const MachineParams mp = MachineParams::gtx680();
  const std::uint64_t n = 1 << 18;
  const Diagnosis d = diagnose(perm::bit_reversal(n), mp);
  EXPECT_FALSE(d.is_identity);
  EXPECT_TRUE(d.is_involution);
  EXPECT_EQ(d.dist_forward, n);
  EXPECT_TRUE(d.plan_supported);
  EXPECT_TRUE(d.fits_shared_f32);
  EXPECT_EQ(d.recommendation, "scheduled");
  EXPECT_EQ(d.time_scheduled, model::scheduled_time(n, mp));
  EXPECT_LT(d.time_scheduled, d.time_d_designated);
  EXPECT_GE(d.time_scheduled, d.lower_bound);
}

TEST(Diagnose, TooSmallForPlan) {
  const MachineParams mp = MachineParams::gtx680();
  const Diagnosis d = diagnose(perm::by_name("random", 256, 1), mp);
  EXPECT_FALSE(d.plan_supported);
  EXPECT_EQ(d.time_scheduled, 0u);
  EXPECT_NE(d.recommendation, "scheduled");
}

TEST(Diagnose, NarrowMachineRejectsScheduled) {
  // w=4: 16 rounds of n/4 stages always lose to the conventional 2n/4+n.
  const MachineParams mp = MachineParams::tiny(4, 100, 2);
  const Diagnosis d = diagnose(perm::bit_reversal(1 << 12), mp);
  EXPECT_TRUE(d.plan_supported);
  EXPECT_GT(d.time_scheduled, std::min(d.time_d_designated, d.time_s_designated));
  EXPECT_NE(d.recommendation, "scheduled");
}

TEST(Diagnose, SharedCapacityGates) {
  MachineParams mp = MachineParams::gtx680();
  mp.shared_bytes = 1024;  // absurdly small SM
  const Diagnosis d = diagnose(perm::bit_reversal(1 << 18), mp);
  EXPECT_TRUE(d.plan_supported);
  EXPECT_FALSE(d.fits_shared_f32);
  EXPECT_NE(d.recommendation, "scheduled");
}

TEST(Diagnose, PrintContainsKeyNumbers) {
  const MachineParams mp = MachineParams::gtx680();
  const Diagnosis d = diagnose(perm::bit_reversal(1 << 16), mp);
  std::ostringstream os;
  print_diagnosis(os, d);
  const std::string out = os.str();
  EXPECT_NE(out.find("recommendation: scheduled"), std::string::npos);
  EXPECT_NE(out.find(std::to_string(d.time_d_designated)), std::string::npos);
  EXPECT_NE(out.find("[involution]"), std::string::npos);
}

TEST(Diagnose, DistributionRatiosBounded) {
  const MachineParams mp = MachineParams::gtx680();
  for (const auto& name : perm::family_names()) {
    const Diagnosis d = diagnose(perm::by_name(name, 1 << 16, 3), mp);
    EXPECT_GE(d.dist_forward_ratio, 1.0 / mp.width) << name;
    EXPECT_LE(d.dist_forward_ratio, 1.0) << name;
    EXPECT_GE(d.dist_inverse_ratio, 1.0 / mp.width) << name;
    EXPECT_LE(d.dist_inverse_ratio, 1.0) << name;
  }
}

}  // namespace
}  // namespace hmm::core
