#include <gtest/gtest.h>

#include "core/shared_permute.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"

namespace hmm::core {
namespace {

using model::MachineParams;

TEST(SharedPermute, ApplyIsCorrect) {
  const std::uint64_t n = 1024;
  for (const auto& name : test::families_for(n)) {
    const perm::Permutation p = perm::by_name(name, n, 7);
    const SharedPermutation sp(p, 32);
    const auto a = test::iota_data<float>(n);
    util::aligned_vector<float> b(n, -1.f);
    sp.apply<float>(a, b);
    for (std::uint64_t j = 0; j < n; ++j) {
      ASSERT_EQ(b[p(j)], a[j]) << name << " @" << j;
    }
  }
}

TEST(SharedPermute, BothRoundsConflictFree) {
  const MachineParams mp = MachineParams::tiny(4, 5, 2);
  const perm::Permutation p = perm::by_name("random", 256, 3);
  const SharedPermutation sp(p, mp.width);
  sim::HmmSim sim(mp);
  sp.sim_rounds(sim);
  EXPECT_EQ(sim.stats().rounds.size(), 2u);
  EXPECT_TRUE(sim.stats().declarations_hold());
  for (const auto& r : sim.stats().rounds) {
    EXPECT_EQ(r.observed, model::AccessClass::kConflictFree) << r.label;
  }
}

TEST(SharedPermute, BeatsConventionalOnConflictHeavyPermutation) {
  // A stride-w permutation maps each warp onto a single bank: the
  // conventional write serializes w-fold; the schedule stays at 1 stage
  // per warp. (This is the paper's refs [8]/[9] result: 1.5x on real
  // hardware for random, up to w-fold in the model's worst case.)
  const MachineParams mp = MachineParams::tiny(4, 5, 1);
  const std::uint64_t n = 256;
  const std::uint64_t w = mp.width;
  // Send warp a entirely into bank (a mod w):
  // P(w*a + b) = w*((a div w)*w + b) + (a mod w) — a bijection for
  // n >= w^2 whose conventional write serializes w-fold in every warp.
  util::aligned_vector<std::uint32_t> map(n);
  for (std::uint64_t a = 0; a < n / w; ++a) {
    for (std::uint64_t b = 0; b < w; ++b) {
      map[w * a + b] = static_cast<std::uint32_t>(w * ((a / w) * w + b) + (a % w));
    }
  }
  const perm::Permutation p{std::move(map)};

  sim::HmmSim conv(mp);
  const std::uint64_t t_conv = shared_conventional_sim_rounds(conv, p);
  EXPECT_EQ(conv.stats().rounds[1].observed, model::AccessClass::kCasual);

  const SharedPermutation sp(p, mp.width);
  sim::HmmSim cf(mp);
  const std::uint64_t t_cf = sp.sim_rounds(cf);
  EXPECT_LT(t_cf, t_conv);
  // Worst case: the casual write needs w stages per warp.
  EXPECT_EQ(t_conv, n / mp.width + n);       // CF read + fully serialized write
  EXPECT_EQ(t_cf, 2 * (n / mp.width));       // two CF rounds
}

TEST(SharedPermute, ConventionalMatchesBankConflictStages) {
  const MachineParams mp = MachineParams::tiny(8, 5, 1);
  const std::uint64_t n = 512;
  const perm::Permutation p = perm::by_name("random", n, 11);
  sim::HmmSim sim(mp);
  const std::uint64_t t = shared_conventional_sim_rounds(sim, p);
  EXPECT_EQ(t, n / mp.width + bank_conflict_stages(p, mp.width));
}

TEST(SharedPermute, BankConflictStagesBounds) {
  const std::uint64_t n = 1024;
  EXPECT_EQ(bank_conflict_stages(perm::identical(n), 32), n / 32);
  const perm::Permutation p = perm::by_name("random", n, 2);
  const std::uint64_t s = bank_conflict_stages(p, 32);
  EXPECT_GE(s, n / 32);
  EXPECT_LE(s, n);
}

TEST(SharedPermute, AllColoringAlgorithmsWork) {
  const perm::Permutation p = perm::by_name("random", 128, 17);
  for (auto algo : {graph::ColoringAlgorithm::kEulerSplit,
                    graph::ColoringAlgorithm::kMatchingPeel,
                    graph::ColoringAlgorithm::kAlternatingPath}) {
    const SharedPermutation sp(p, 8, algo);
    const auto a = test::iota_data<std::uint32_t>(128);
    util::aligned_vector<std::uint32_t> b(128);
    sp.apply<std::uint32_t>(a, b);
    for (std::uint64_t j = 0; j < 128; ++j) ASSERT_EQ(b[p(j)], a[j]);
  }
}

}  // namespace
}  // namespace hmm::core
