/// Cross-validation between the two timing implementations: the
/// one-shot analytic accounting (HmmSim) and the cycle-stepped
/// operational engine (PipelineEngine) must agree on every round —
/// neither is allowed to drift from the model.

#include <gtest/gtest.h>

#include "perm/generators.hpp"
#include "sim/engine.hpp"
#include "sim/hmm_sim.hpp"
#include "util/rng.hpp"

namespace hmm::sim {
namespace {

using model::AccessClass;
using model::Dir;
using model::MachineParams;
using model::Space;

/// One global round through both paths; they must report the same time.
void check_global(const MachineParams& mp, std::span<const std::uint64_t> addrs) {
  HmmSim sim(mp);
  const std::uint64_t t_account =
      sim.global_round("r", addrs, Dir::kRead, AccessClass::kCasual);
  PipelineEngine engine(mp, Space::kGlobal);
  const EngineRound round = engine.run_round(addrs);
  EXPECT_EQ(t_account, round.duration());
  EXPECT_EQ(sim.stats().rounds[0].stages, round.stages);
}

TEST(CrossValidation, CoalescedGlobal) {
  const MachineParams mp = MachineParams::tiny(8, 33, 2);
  std::vector<std::uint64_t> addrs(256);
  for (std::uint64_t i = 0; i < addrs.size(); ++i) addrs[i] = i;
  check_global(mp, addrs);
}

TEST(CrossValidation, ScatteredGlobal) {
  const MachineParams mp = MachineParams::tiny(8, 33, 2);
  const perm::Permutation p = perm::by_name("random", 256, 4);
  std::vector<std::uint64_t> addrs(256);
  for (std::uint64_t i = 0; i < addrs.size(); ++i) addrs[i] = p(i);
  check_global(mp, addrs);
}

TEST(CrossValidation, SparseParticipation) {
  const MachineParams mp = MachineParams::tiny(4, 12, 2);
  util::Xoshiro256 rng(7);
  std::vector<std::uint64_t> addrs(128);
  for (auto& a : addrs) {
    a = rng.bounded(3) == 0 ? model::kNoAccess : rng.bounded(4096);
  }
  check_global(mp, addrs);
}

TEST(CrossValidation, RandomSweep) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Xoshiro256 rng(100 + seed);
    MachineParams mp = MachineParams::tiny(
        1u << (2 + rng.bounded(3)), static_cast<std::uint32_t>(1 + rng.bounded(200)), 2);
    std::vector<std::uint64_t> addrs(mp.width * (1 + rng.bounded(16)));
    for (auto& a : addrs) a = rng.bounded(1 << 16);
    check_global(mp, addrs);
  }
}

TEST(CrossValidation, SharedSingleDmm) {
  // The engine models one memory; compare against a 1-DMM machine where
  // the accounting's max-over-DMMs degenerates to the same number.
  MachineParams mp = MachineParams::tiny(8, 5, 1);
  mp.shared_latency = 3;
  util::Xoshiro256 rng(9);
  std::vector<std::uint64_t> addrs(64);
  for (auto& a : addrs) a = rng.bounded(64);

  HmmSim sim(mp);
  const std::uint64_t t_account = sim.shared_round("s", addrs, /*block_size=*/addrs.size(),
                                                   Dir::kWrite, AccessClass::kCasual);
  PipelineEngine engine(mp, Space::kShared);
  const EngineRound round = engine.run_round(addrs);
  EXPECT_EQ(t_account, round.duration());
}

TEST(CrossValidation, MultiRoundClockAgreement) {
  // A sequence of rounds: cumulative clocks stay in lockstep.
  const MachineParams mp = MachineParams::tiny(4, 21, 2);
  HmmSim sim(mp);
  PipelineEngine engine(mp, Space::kGlobal);
  util::Xoshiro256 rng(17);
  std::vector<std::uint64_t> addrs(64);
  for (int round = 0; round < 8; ++round) {
    for (auto& a : addrs) a = rng.bounded(1 << 12);
    sim.global_round("r" + std::to_string(round), addrs, Dir::kRead, AccessClass::kCasual);
    engine.run_round(addrs);
    EXPECT_EQ(sim.now(), engine.now()) << "after round " << round;
  }
}

}  // namespace
}  // namespace hmm::sim
