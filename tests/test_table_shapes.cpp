/// Miniaturized Table II, asserted: the orderings and invariances the
/// paper's evaluation tables exhibit, checked programmatically at a
/// test-friendly size on both measurement channels (model units
/// exactly; host milliseconds as weak sanity only, since wall-clock is
/// machine-dependent).

#include <gtest/gtest.h>

#include <map>

#include "core/conventional.hpp"
#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "model/cost.hpp"
#include "perm/distribution.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"

namespace hmm {
namespace {

using model::MachineParams;

class Table2Shape : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kN = 1 << 16;
  const MachineParams mp_ = MachineParams::gtx680();

  std::map<std::string, std::uint64_t> conv_units_;
  std::map<std::string, std::uint64_t> sched_units_;

  void SetUp() override {
    for (const auto& name : {"identical", "shuffle", "random", "bit-reversal", "transpose"}) {
      const perm::Permutation p = perm::by_name(name, kN, 42);
      sim::HmmSim conv(mp_);
      conv_units_[name] = core::d_designated_sim_rounds(conv, p);
      const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp_);
      sim::HmmSim sched(mp_);
      sched_units_[name] = core::scheduled_sim_rounds(sched, plan);
    }
  }
};

TEST_F(Table2Shape, ConventionalOrderingFollowsDistribution) {
  // identical < shuffle < random <= bit-reversal == transpose.
  EXPECT_LT(conv_units_["identical"], conv_units_["shuffle"]);
  EXPECT_LT(conv_units_["shuffle"], conv_units_["random"]);
  EXPECT_LE(conv_units_["random"], conv_units_["bit-reversal"]);
  EXPECT_EQ(conv_units_["bit-reversal"], conv_units_["transpose"]);
}

TEST_F(Table2Shape, ScheduledColumnIsConstant) {
  const std::uint64_t t = sched_units_["identical"];
  for (const auto& [name, units] : sched_units_) {
    EXPECT_EQ(units, t) << name;
  }
}

TEST_F(Table2Shape, WinnersMatchThePaper) {
  // Low-distribution families favor the conventional algorithm...
  EXPECT_LT(conv_units_["identical"], sched_units_["identical"]);
  EXPECT_LT(conv_units_["shuffle"], sched_units_["shuffle"]);
  // ...high-distribution families favor the scheduled one.
  EXPECT_GT(conv_units_["random"], sched_units_["random"]);
  EXPECT_GT(conv_units_["bit-reversal"], sched_units_["bit-reversal"]);
  EXPECT_GT(conv_units_["transpose"], sched_units_["transpose"]);
}

TEST_F(Table2Shape, SpeedupInPaperBand) {
  // ~1.8-2x in the model at the largest sizes (paper hardware: 2.4-3x).
  const double speedup = static_cast<double>(conv_units_["bit-reversal"]) /
                         static_cast<double>(sched_units_["bit-reversal"]);
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 2.5);
}

TEST_F(Table2Shape, TimesScaleLinearlyWithN) {
  // Doubling n roughly doubles both columns (latency-corrected).
  const perm::Permutation p2 = perm::bit_reversal(2 * kN);
  sim::HmmSim conv(mp_);
  const std::uint64_t conv2 = core::d_designated_sim_rounds(conv, p2);
  const core::ScheduledPlan plan2 = core::ScheduledPlan::build(p2, mp_);
  sim::HmmSim sched(mp_);
  const std::uint64_t sched2 = core::scheduled_sim_rounds(sched, plan2);

  const std::uint64_t conv_lat = 3 * (mp_.latency - 1);
  const std::uint64_t sched_lat = 16 * (mp_.latency - 1);
  EXPECT_EQ(conv2 - conv_lat, 2 * (conv_units_["bit-reversal"] - conv_lat));
  EXPECT_EQ(sched2 - sched_lat, 2 * (sched_units_["bit-reversal"] - sched_lat));
}

TEST_F(Table2Shape, HostBackendSanity) {
  // Weak wall-clock checks only: everything runs and agrees on results.
  util::ThreadPool pool(2);
  const perm::Permutation p = perm::bit_reversal(kN);
  const auto a = test::iota_data<float>(kN);
  util::aligned_vector<float> b1(kN), b2(kN), s(kN);
  core::d_designated_cpu<float>(pool, a, b1, p);
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp_);
  core::scheduled_cpu_lean<float>(pool, plan, a, b2, s);
  EXPECT_EQ(b1, b2);
}

/// Table III shape at mini scale: distribution concentration and the
/// constancy of the scheduled column across random draws.
TEST(Table3Shape, MiniStatistics) {
  const MachineParams mp = MachineParams::gtx680();
  const std::uint64_t n = 1 << 16;
  std::uint64_t sched_ref = 0;
  double ratio_lo = 1e9, ratio_hi = 0;
  for (int s = 0; s < 6; ++s) {
    const perm::Permutation p = perm::by_name("random", n, 500 + s);
    const double ratio =
        static_cast<double>(perm::distribution(p, mp.width)) / static_cast<double>(n);
    ratio_lo = std::min(ratio_lo, ratio);
    ratio_hi = std::max(ratio_hi, ratio);
    const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);
    sim::HmmSim sim(mp);
    const std::uint64_t t = core::scheduled_sim_rounds(sim, plan);
    if (sched_ref == 0) sched_ref = t;
    EXPECT_EQ(t, sched_ref);
  }
  EXPECT_GT(ratio_lo, 0.98);
  EXPECT_LE(ratio_hi, 1.0);
  EXPECT_LT(ratio_hi - ratio_lo, 0.01);  // concentration (paper: 3e-5 at 4M)
}

}  // namespace
}  // namespace hmm
