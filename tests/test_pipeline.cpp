#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"

namespace hmm::core {
namespace {

using model::MachineParams;

TEST(Pipeline, FusesEverythingWithoutBarriers) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 1 << 10;
  PermutationPipeline pipe(mp);
  pipe.then(perm::shuffle(n)).then(perm::bit_reversal(n)).then(perm::by_name("random", n, 1));
  pipe.compile();
  EXPECT_EQ(pipe.stage_count(), 3u);
  EXPECT_EQ(pipe.segment_count(), 1u);
  EXPECT_EQ(pipe.active_segment_count(), 1u);
  // Fusion buys exactly stage_count / active_segments.
  EXPECT_EQ(pipe.predicted_unfused_time_units(), 3 * pipe.predicted_time_units());

  // The fused permutation equals the composition.
  const perm::Permutation expected =
      perm::by_name("random", n, 1).compose(perm::bit_reversal(n)).compose(perm::shuffle(n));
  ASSERT_NE(pipe.segment_permutation(0), nullptr);
  EXPECT_EQ(*pipe.segment_permutation(0), expected);
}

TEST(Pipeline, BarriersSplitSegments) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 256;
  PermutationPipeline pipe(mp);
  pipe.then(perm::shuffle(n)).then(perm::shuffle(n)).barrier().then(perm::bit_reversal(n));
  pipe.compile();
  EXPECT_EQ(pipe.segment_count(), 2u);
  EXPECT_EQ(pipe.active_segment_count(), 2u);
}

TEST(Pipeline, IdentityCompositionsAreSkipped) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 256;
  // Two corner turns cancel; bit-reversal twice cancels.
  PermutationPipeline pipe(mp);
  pipe.then(perm::transpose_square(n)).then(perm::transpose_square(n));
  pipe.compile();
  EXPECT_EQ(pipe.segment_count(), 1u);
  EXPECT_EQ(pipe.active_segment_count(), 0u);
  EXPECT_EQ(pipe.predicted_time_units(), 0u);
}

TEST(Pipeline, ExecuteMatchesSequentialApplication) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 1 << 10;
  util::ThreadPool pool(2);

  const perm::Permutation p1 = perm::by_name("random", n, 2);
  const perm::Permutation p2 = perm::shuffle(n);
  const perm::Permutation p3 = perm::by_name("random", n, 3);

  PermutationPipeline pipe(mp);
  pipe.then(p1).then(p2).barrier().then(p3);
  pipe.compile();

  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n), scratch(n);
  pipe.execute<float>(pool, a, b, scratch);

  // Reference: apply the stages one by one.
  util::aligned_vector<float> ref(n), tmp(n);
  p1.apply<float>(a, tmp);
  p2.apply<float>(tmp, ref);
  p3.apply<float>(ref, tmp);
  EXPECT_EQ(b, tmp);
}

TEST(Pipeline, IdentityPipelineIsCopy) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 256;
  util::ThreadPool pool(1);
  PermutationPipeline pipe(mp);
  pipe.then(perm::bit_reversal(n)).then(perm::bit_reversal(n));
  pipe.compile();
  const auto a = test::iota_data<double>(n);
  util::aligned_vector<double> b(n), scratch(n);
  pipe.execute<double>(pool, a, b, scratch);
  EXPECT_EQ(b, a);
}

TEST(Pipeline, ManySegmentsOddCount) {
  // Odd number of active segments exercises the final copy-back.
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 256;
  util::ThreadPool pool(1);
  PermutationPipeline pipe(mp);
  pipe.then(perm::by_name("random", n, 5)).barrier();
  pipe.then(perm::by_name("random", n, 6)).barrier();
  pipe.then(perm::by_name("random", n, 7));
  pipe.compile();
  EXPECT_EQ(pipe.active_segment_count(), 3u);

  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n), scratch(n), ref(n), tmp(n);
  pipe.execute<float>(pool, a, b, scratch);
  perm::by_name("random", n, 5).apply<float>(a, tmp);
  perm::by_name("random", n, 6).apply<float>(tmp, ref);
  perm::by_name("random", n, 7).apply<float>(ref, tmp);
  EXPECT_EQ(b, tmp);
}

TEST(Pipeline, ApiMisuseDies) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  PermutationPipeline pipe(mp);
  EXPECT_DEATH(pipe.barrier(), "preceding stage");
  pipe.then(perm::identical(256));
  EXPECT_DEATH(pipe.then(perm::identical(512)), "one size");
  EXPECT_DEATH(pipe.predicted_time_units(), "compile");
  pipe.compile();
  EXPECT_DEATH(pipe.compile(), "already compiled");
  EXPECT_DEATH(pipe.then(perm::identical(256)), "already compiled");
}

}  // namespace
}  // namespace hmm::core
