/// API-misuse death tests and boundary behaviours across modules —
/// the contract documentation, executable.

#include <gtest/gtest.h>

#include "core/layout.hpp"
#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "core/shared_permute.hpp"
#include "exec/kernel.hpp"
#include "perm/generators.hpp"
#include "sim/hmm_sim.hpp"
#include "test_helpers.hpp"

namespace hmm {
namespace {

using model::MachineParams;

TEST(EdgeCases, MachineParamsValidation) {
  MachineParams p = MachineParams::gtx680();
  p.width = 24;  // not a power of two
  EXPECT_DEATH(p.validate(), "power of two");
  p = MachineParams::gtx680();
  p.latency = 0;
  EXPECT_DEATH(p.validate(), "latency");
  p = MachineParams::gtx680();
  p.dmms = 3;
  EXPECT_DEATH(p.validate(), "dmms");
}

TEST(EdgeCases, LayoutRejectsNonPowerOfTwo) {
  EXPECT_DEATH(core::shape_for(1000, 32), "power-of-two");
  EXPECT_DEATH(core::shape_for(512, 32), "too small");
}

TEST(EdgeCases, LayoutMinimumSizes) {
  // Smallest supported: w^2 (even log2) and 2*w^2 (odd log2).
  EXPECT_EQ(core::shape_for(1024, 32).rows, 32u);
  EXPECT_EQ(core::shape_for(2048, 32).cols, 64u);
  EXPECT_EQ(core::shape_for(16, 4).rows, 4u);
}

TEST(EdgeCases, PermutationRejectsBadMappings) {
  util::aligned_vector<std::uint32_t> dup = {0, 0, 1, 2};
  EXPECT_DEATH(perm::Permutation{std::move(dup)}, "not a permutation");
  util::aligned_vector<std::uint32_t> oob = {0, 1, 2, 7};
  EXPECT_DEATH(perm::Permutation{std::move(oob)}, "not a permutation");
}

TEST(EdgeCases, GeneratorsRejectInvalidSizes) {
  EXPECT_DEATH(perm::shuffle(100), "power-of-two");
  EXPECT_DEATH(perm::butterfly(1 << 11), "even power");
  EXPECT_DEATH(perm::stride(64, 2), "coprime");
  EXPECT_DEATH(perm::xor_mask(64, 64), "mask");
  EXPECT_DEATH(perm::by_name("no-such-family", 64), "unknown permutation family");
}

TEST(EdgeCases, SharedRoundRequiresAlignedBlocks) {
  sim::HmmSim sim(MachineParams::tiny(4, 5, 2));
  std::vector<std::uint64_t> addrs(12);
  EXPECT_DEATH(sim.shared_round("s", addrs, 6, model::Dir::kRead,
                                model::AccessClass::kConflictFree),
               "multiple of the width");
  EXPECT_DEATH(sim.shared_round("s", addrs, 8, model::Dir::kRead,
                                model::AccessClass::kConflictFree),
               "multiple of block size");
}

TEST(EdgeCases, ExecLaunchRequiresWidthMultipleBlocks) {
  exec::Machine m(MachineParams::tiny(4, 5, 2));
  struct Regs {};
  exec::Kernel<Regs> k("noop");
  k.compute([](const exec::ThreadCtx&, Regs&) {});
  EXPECT_DEATH(m.launch(exec::LaunchConfig{1, 6}, k), "multiple of the machine width");
}

TEST(EdgeCases, SharedPermutationSizeLimits) {
  EXPECT_DEATH(core::SharedPermutation(perm::identical(100), 8), "multiple of the width");
}

TEST(EdgeCases, SingleWarpPlanWorks) {
  // The degenerate but legal minimum: n = w^2 with one warp per row.
  const MachineParams mp = MachineParams::tiny(4, 5, 1);
  const std::uint64_t n = 16;
  for (const auto& name : {"identical", "random", "bit-reversal"}) {
    const perm::Permutation p = perm::by_name(name, n, 1);
    const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);
    EXPECT_TRUE(plan.validate(p)) << name;
    const auto a = test::iota_data<float>(n);
    util::aligned_vector<float> b(n);
    sim::HmmSim sim(mp);
    core::scheduled_sim<float>(sim, plan, a, b);
    for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(b[p(i)], a[i]) << name;
    EXPECT_TRUE(sim.stats().declarations_hold()) << name;
  }
}

TEST(EdgeCases, WidthEqualsOneWarpPerBlock) {
  // cols == width: each row is exactly one warp; schedule degree 1.
  const MachineParams mp = MachineParams::tiny(8, 5, 2);
  const std::uint64_t n = 64;  // 8 x 8
  const perm::Permutation p = perm::by_name("random", n, 2);
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);
  EXPECT_TRUE(plan.validate(p));
}

TEST(EdgeCases, EmptyAndSingleElementPermutations) {
  EXPECT_FALSE(perm::Permutation::is_valid(std::vector<std::uint32_t>{}));
  const perm::Permutation one(1);
  EXPECT_TRUE(one.is_identity());
  EXPECT_TRUE(one.inverse().is_identity());
}

TEST(EdgeCases, MaxWidth64Supported) {
  // The access classifiers cap at 64 banks.
  const MachineParams mp = MachineParams::tiny(64, 5, 1);
  sim::HmmSim sim(mp);
  std::vector<std::uint64_t> addrs(64);
  for (std::uint64_t i = 0; i < 64; ++i) addrs[i] = i;
  EXPECT_EQ(sim.global_round("r", addrs, model::Dir::kRead,
                             model::AccessClass::kCoalesced),
            1u + mp.latency - 1);
}

TEST(EdgeCases, RowScheduleWidth64) {
  // Bank-distinctness bookkeeping at the 64-bit mask boundary.
  const std::uint32_t w = 64;
  std::vector<std::uint16_t> g(128);
  util::Xoshiro256 rng(3);
  for (std::uint64_t j = 0; j < g.size(); ++j) g[j] = static_cast<std::uint16_t>(j);
  for (std::uint64_t j = g.size() - 1; j > 0; --j) std::swap(g[j], g[rng.bounded(j + 1)]);
  std::vector<std::uint16_t> phat(g.size()), q(g.size());
  core::build_row_schedule(g, w, phat, q);
  EXPECT_TRUE(core::row_schedule_valid(g, phat, q, w));
}

}  // namespace
}  // namespace hmm
