/// End-to-end assertions of the paper's headline claims on the model —
/// the executable form of EXPERIMENTS.md. Each test names the claim and
/// the place in the paper it comes from.

#include <gtest/gtest.h>

#include "core/conventional.hpp"
#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "core/shared_permute.hpp"
#include "model/cost.hpp"
#include "perm/distribution.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"

namespace hmm {
namespace {

using model::MachineParams;

// Abstract: "our optimal offline permutation algorithm runs in
// 16n/w + 16l(+...) time units ... although it performs 32 rounds of
// memory access", and all 16 global rounds are coalesced.
TEST(PaperClaims, ThirtyTwoRoundsSixteenCoalesced) {
  const MachineParams mp = MachineParams::gtx680();
  const std::uint64_t n = 1 << 16;
  const core::ScheduledPlan plan = core::ScheduledPlan::build(perm::bit_reversal(n), mp);
  sim::HmmSim sim(mp);
  core::scheduled_sim_rounds(sim, plan);
  EXPECT_EQ(sim.stats().rounds.size(), 32u);
  EXPECT_EQ(sim.stats().rounds_of(model::Space::kGlobal), 16u);
  EXPECT_EQ(sim.stats().rounds_of(model::Space::kShared), 16u);
  const auto counts = sim.stats().observed_counts();
  EXPECT_EQ(counts.casual_read_global + counts.casual_write_global, 0u);
}

// Section VIII: "the running time of our scheduled offline permutation
// algorithm ... is independent of permutation P" — exactly, in time units.
TEST(PaperClaims, ScheduledTimePermutationIndependent) {
  const MachineParams mp = MachineParams::gtx680();
  const std::uint64_t n = 1 << 14;
  std::uint64_t expected = 0;
  for (const auto& name : test::families_for(n)) {
    const core::ScheduledPlan plan = core::ScheduledPlan::build(perm::by_name(name, n), mp);
    sim::HmmSim sim(mp);
    const std::uint64_t t = core::scheduled_sim_rounds(sim, plan);
    if (expected == 0) expected = t;
    EXPECT_EQ(t, expected) << name;
  }
}

// Theorem 9 + the lower bound: the scheduled algorithm is optimal up to
// a constant: time = 16(n/w + l - 1) + 16 n/(dw), lower bound max(2n/w, l).
TEST(PaperClaims, Theorem9Optimality) {
  const MachineParams mp = MachineParams::gtx680();
  for (std::uint64_t n : {1ull << 14, 1ull << 18, 1ull << 22}) {
    const std::uint64_t t = model::scheduled_time(n, mp);
    EXPECT_EQ(t, 16 * (n / mp.width + mp.latency - 1) +
                     16 * (n / (static_cast<std::uint64_t>(mp.dmms) * mp.width)));
    // Constant-factor optimality: <= 9x the lower bound asymptotically
    // (16/w per element vs 2/w, plus the shared term).
    EXPECT_LE(t, 9 * model::lower_bound(n, mp) + 16 * mp.latency);
  }
}

// Section I: "the bit-reversal permutation for 4M float numbers can be
// completed in 780ms by our optimal permutation algorithm, while the
// conventional algorithm takes 2328ms" — ratio ~3.0. In the model the
// ratio at 4M is ~2x (the hardware adds casual-write overheads the
// model undercounts); we assert the direction and a sane band.
TEST(PaperClaims, BitReversal4MSpeedupBand) {
  const MachineParams mp = MachineParams::gtx680();
  const std::uint64_t n = 4096ull << 10;
  const perm::Permutation p = perm::bit_reversal(n);
  const std::uint64_t t_conv =
      model::d_designated_time(n, perm::distribution(p, mp.width), mp);
  const std::uint64_t t_sched = model::scheduled_time(n, mp);
  const double ratio = static_cast<double>(t_conv) / static_cast<double>(t_sched);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 4.0);
}

// Table III: over random permutations, d_w(P)/n concentrates near 1
// (paper at 4M: [0.99987, 0.99990]) and the scheduled algorithm is
// ~2.45x faster on average than D-designated.
TEST(PaperClaims, Table3RandomPermutationStatistics) {
  const MachineParams mp = MachineParams::gtx680();
  const std::uint64_t n = 1 << 20;
  double ratio_min = 1e9, ratio_max = 0;
  double speedup_sum = 0;
  const int samples = 5;
  for (int s = 0; s < samples; ++s) {
    const perm::Permutation p = perm::by_name("random", n, 100 + s);
    const double r = static_cast<double>(perm::distribution(p, mp.width)) /
                     static_cast<double>(n);
    ratio_min = std::min(ratio_min, r);
    ratio_max = std::max(ratio_max, r);
    speedup_sum += static_cast<double>(model::d_designated_time(
                       n, perm::distribution(p, mp.width), mp)) /
                   static_cast<double>(model::scheduled_time(n, mp));
  }
  EXPECT_GT(ratio_min, 0.995);  // concentration (looser than 4M's 0.9999)
  EXPECT_LE(ratio_max, 1.0);
  const double speedup = speedup_sum / samples;
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 3.0);
}

// Section VIII: "for permutations with large distribution, our scheduled
// permutation algorithm runs faster than the conventional algorithm
// whenever n >= 256K" — in the model (no L2), the scheduled algorithm
// wins for bit-reversal at every size the plan supports with l=300;
// with the L2 model, the conventional algorithm wins at small n.
TEST(PaperClaims, SmallNInversionNeedsTheL2Cache) {
  const MachineParams mp = MachineParams::gtx680();
  const std::uint64_t small_n = 16 << 10;
  const perm::Permutation p = perm::bit_reversal(small_n);
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);

  sim::HmmSim plain(mp);
  const std::uint64_t conv_plain = core::d_designated_sim_rounds(plain, p);
  sim::HmmSim sched_sim(mp);
  const std::uint64_t sched = core::scheduled_sim_rounds(sched_sim, plan);
  EXPECT_LT(sched, conv_plain) << "without a cache the scheduled algorithm wins even small";

  sim::HmmSim cached(mp);
  sim::L2Model l2;
  l2.enabled = true;
  l2.capacity_bytes = 512 * 1024;
  l2.element_bytes = sizeof(float);
  cached.set_l2(l2);
  const std::uint64_t conv_cached = core::d_designated_sim_rounds(cached, p);
  EXPECT_LT(conv_cached, sched) << "the 512KiB L2 explains the small-n inversion";
}

// Section VIII: "in most cases, the S-designated permutation algorithm
// is more efficient than the D-designated" — in the model they tie
// unless the permutation's inverse has lower distribution; check the
// asymmetric families behave consistently.
TEST(PaperClaims, SAndDDesignatedSymmetry) {
  const MachineParams mp = MachineParams::gtx680();
  const std::uint64_t n = 1 << 16;
  for (const auto& name : {"bit-reversal", "transpose"}) {
    const perm::Permutation p = perm::by_name(name, n);
    // Both are involutions (bit-reversal) or have same-distribution
    // inverses (transpose <-> transpose of the transposed shape).
    EXPECT_EQ(model::d_designated_time(n, perm::distribution(p, mp.width), mp),
              model::s_designated_time(n, perm::inverse_distribution(p, mp.width), mp))
        << name;
  }
}

// Section I (prior work [9]): the conflict-free shared-memory
// permutation beats the conventional one on a single DMM; 1.5x on
// hardware for random permutations of 1024 floats.
TEST(PaperClaims, PriorWorkSharedMemorySpeedup) {
  const MachineParams mp{.width = 32, .latency = 1, .dmms = 1, .shared_bytes = 48 * 1024};
  const std::uint64_t n = 1024;
  double speedup_sum = 0;
  const int samples = 10;
  for (int s = 0; s < samples; ++s) {
    const perm::Permutation p = perm::by_name("random", n, 50 + s);
    sim::HmmSim conv(mp);
    const auto t_conv = core::shared_conventional_sim_rounds(conv, p);
    const core::SharedPermutation sp(p, mp.width);
    sim::HmmSim cf(mp);
    const auto t_cf = sp.sim_rounds(cf);
    speedup_sum += static_cast<double>(t_conv) / static_cast<double>(t_cf);
  }
  const double speedup = speedup_sum / samples;
  // Random warps of 32 over 32 banks average ~2.2 stages of conflict;
  // hardware measured 1.5x — accept a generous band around it.
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 3.0);
}

}  // namespace
}  // namespace hmm
