/// Closed-form identity sweeps: the algebra of Section 2-5 of
/// docs/MODEL.md, pinned across machine shapes and element widths.

#include <gtest/gtest.h>

#include "model/cost.hpp"

namespace hmm::model {
namespace {

struct Shape {
  std::uint32_t width;
  std::uint32_t latency;
  std::uint32_t shared_latency;
  std::uint32_t dmms;
  std::uint64_t n;
  std::uint32_t words;
};

class CostSweep : public ::testing::TestWithParam<Shape> {
 protected:
  [[nodiscard]] MachineParams machine() const {
    const Shape& s = GetParam();
    MachineParams p;
    p.width = s.width;
    p.latency = s.latency;
    p.shared_latency = s.shared_latency;
    p.dmms = s.dmms;
    return p;
  }
};

TEST_P(CostSweep, CompositionIdentities) {
  const auto& s = GetParam();
  const MachineParams p = machine();
  // scheduled = 2 row + column; column = 2 transpose + row.
  EXPECT_EQ(scheduled_time(s.n, p, s.words),
            2 * row_wise_time(s.n, p, s.words) + column_wise_time(s.n, p, s.words));
  EXPECT_EQ(column_wise_time(s.n, p, s.words),
            2 * transpose_time(s.n, p, s.words) + row_wise_time(s.n, p, s.words));
}

TEST_P(CostSweep, RoundDecompositions) {
  const auto& s = GetParam();
  const MachineParams p = machine();
  EXPECT_EQ(transpose_time(s.n, p, s.words),
            2 * coalesced_round_time(s.n, p, s.words) +
                2 * conflict_free_round_time(s.n, p, s.words));
  EXPECT_EQ(row_wise_time(s.n, p, s.words),
            2 * coalesced_round_time(s.n, p, s.words) + 2 * coalesced_round_time(s.n, p, 1) +
                4 * conflict_free_round_time(s.n, p, s.words));
}

TEST_P(CostSweep, ConventionalBounds) {
  const auto& s = GetParam();
  const MachineParams p = machine();
  const std::uint32_t group = p.width / s.words;
  // Distribution range [n*words/w, n] bounds the conventional cost.
  const std::uint64_t d_min = s.n / group;
  const std::uint64_t d_max = s.n;
  EXPECT_LE(d_designated_time(s.n, d_min, p, s.words),
            d_designated_time(s.n, d_max, p, s.words));
  // The best conventional case (fully coalesced writes, d = n*words/w)
  // equals three coalesced rounds: index read + data read + data write.
  EXPECT_EQ(d_designated_time(s.n, d_min, p, s.words),
            coalesced_round_time(s.n, p, 1) + 2 * coalesced_round_time(s.n, p, s.words));
}

TEST_P(CostSweep, LowerBoundDominatedByEverything) {
  const auto& s = GetParam();
  const MachineParams p = machine();
  const std::uint64_t lb = lower_bound(s.n, p);
  EXPECT_LE(lb, scheduled_time(s.n, p, s.words));
  EXPECT_LE(lb, d_designated_time(s.n, s.n, p, s.words));
  EXPECT_LE(lb, transpose_time(s.n, p, s.words) * 8);  // scheduled >= transpose costs
}

TEST_P(CostSweep, WordsMonotone) {
  const auto& s = GetParam();
  const MachineParams p = machine();
  if (s.words * 2 > p.width) GTEST_SKIP();
  EXPECT_LT(scheduled_time(s.n, p, s.words), scheduled_time(s.n, p, s.words * 2));
  EXPECT_LT(coalesced_round_time(s.n, p, s.words),
            coalesced_round_time(s.n, p, s.words * 2));
}

TEST_P(CostSweep, LatencyAffectsGlobalOnly) {
  const auto& s = GetParam();
  MachineParams lo = machine(), hi = machine();
  hi.latency = lo.latency + 100;
  // 16 global rounds -> the latency delta appears exactly 16 times.
  EXPECT_EQ(scheduled_time(s.n, hi, s.words) - scheduled_time(s.n, lo, s.words), 16u * 100);
  // 3 global rounds for the conventional algorithms.
  EXPECT_EQ(d_designated_time(s.n, s.n, hi, s.words) -
                d_designated_time(s.n, s.n, lo, s.words),
            3u * 100);
}

TEST_P(CostSweep, SharedLatencyAffectsSharedOnly) {
  const auto& s = GetParam();
  MachineParams lo = machine(), hi = machine();
  hi.shared_latency = lo.shared_latency + 10;
  // 16 shared rounds in the scheduled pipeline.
  EXPECT_EQ(scheduled_time(s.n, hi, s.words) - scheduled_time(s.n, lo, s.words), 16u * 10);
  // Conventional algorithms never touch shared memory.
  EXPECT_EQ(d_designated_time(s.n, s.n, hi, s.words),
            d_designated_time(s.n, s.n, lo, s.words));
}

TEST_P(CostSweep, MoreDmmsNeverSlower) {
  const auto& s = GetParam();
  MachineParams few = machine(), many = machine();
  many.dmms = few.dmms * 2;
  EXPECT_GE(scheduled_time(s.n, few, s.words), scheduled_time(s.n, many, s.words));
}

TEST(BlockCap, UncappedWhenRowsFit) {
  const MachineParams p = MachineParams::gtx680();
  // cols <= cap: the capped formula must reduce to the uncapped one.
  for (std::uint64_t n : {1ull << 16, 1ull << 20}) {
    EXPECT_EQ(scheduled_time_capped(n, p, 1, 1024), scheduled_time(n, p, 1)) << n;
  }
}

TEST(BlockCap, OverheadIsWavesTimesLatency) {
  const MachineParams p = MachineParams::gtx680();
  const std::uint64_t n = 1ull << 22;  // 2048 x 2048: 2 waves per row pass
  const std::uint64_t capped = scheduled_time_capped(n, p, 1, 1024);
  const std::uint64_t base = scheduled_time(n, p, 1);
  EXPECT_GT(capped, base);
  // Each of the 3 row passes has 4 global rounds and 4 shared rounds;
  // one extra wave adds (l-1) per global and (L-1) per shared round:
  // 3 * 4 * (l-1) extra (L = 1 contributes nothing).
  EXPECT_EQ(capped - base, 3ull * 4 * (p.latency - 1));
}

TEST(BlockCap, TighterCapsCostMore) {
  const MachineParams p = MachineParams::gtx680();
  const std::uint64_t n = 1ull << 22;
  EXPECT_GT(scheduled_time_capped(n, p, 1, 256), scheduled_time_capped(n, p, 1, 1024));
}

std::vector<Shape> sweep_shapes() {
  std::vector<Shape> shapes;
  for (std::uint32_t w : {4u, 8u, 32u}) {
    for (std::uint32_t l : {1u, 17u, 300u}) {
      for (std::uint32_t sl : {1u, 4u}) {
        for (std::uint32_t d : {1u, 8u}) {
          for (std::uint32_t words : {1u, 2u}) {
            if (words >= w) continue;
            shapes.push_back(Shape{w, l, sl, d, 1ull << 14, words});
          }
        }
      }
    }
  }
  return shapes;
}

INSTANTIATE_TEST_SUITE_P(Grid, CostSweep, ::testing::ValuesIn(sweep_shapes()));

}  // namespace
}  // namespace hmm::model
