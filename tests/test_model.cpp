#include <gtest/gtest.h>

#include <vector>

#include "model/access.hpp"
#include "model/cost.hpp"
#include "model/machine.hpp"

namespace hmm::model {
namespace {

TEST(Machine, BankAndGroup) {
  EXPECT_EQ(bank_of(0, 32), 0u);
  EXPECT_EQ(bank_of(33, 32), 1u);
  EXPECT_EQ(bank_of(31, 32), 31u);
  EXPECT_EQ(group_of(0, 32), 0u);
  EXPECT_EQ(group_of(31, 32), 0u);
  EXPECT_EQ(group_of(32, 32), 1u);
  EXPECT_EQ(group_of(100, 4), 25u);
}

TEST(Machine, PresetsValidate) {
  MachineParams::gtx680().validate();
  MachineParams::tiny().validate();
}

TEST(Access, UmmStagesCoalesced) {
  // All addresses in one group -> 1 stage.
  std::vector<std::uint64_t> warp = {64, 65, 66, 67};
  EXPECT_EQ(umm_stages(warp, 4), 1u);
  EXPECT_TRUE(is_coalesced(warp, 4));
}

TEST(Access, UmmStagesScattered) {
  std::vector<std::uint64_t> warp = {0, 4, 8, 12};  // four groups with w=4
  EXPECT_EQ(umm_stages(warp, 4), 4u);
  EXPECT_FALSE(is_coalesced(warp, 4));
}

TEST(Access, UmmStagesFig3TopWarp) {
  // Fig. 3 example, w=4: warp accesses 7,5,15,0 -> groups {1,1,3,0} = 3.
  std::vector<std::uint64_t> warp = {7, 5, 15, 0};
  EXPECT_EQ(umm_stages(warp, 4), 3u);
}

TEST(Access, UmmStagesFig3BottomWarp) {
  // Fig. 3 example: warp accesses 10,11,12,15 -> groups {2,2,3,3} = 2.
  std::vector<std::uint64_t> warp = {10, 11, 12, 15};
  EXPECT_EQ(umm_stages(warp, 4), 2u);
}

TEST(Access, DmmStagesConflictFree) {
  std::vector<std::uint64_t> warp = {0, 1, 2, 3};
  EXPECT_EQ(dmm_stages(warp, 4), 1u);
  EXPECT_TRUE(is_conflict_free(warp, 4));
}

TEST(Access, DmmStagesFig3TopWarp) {
  // Fig. 3, w=4: 7,5,15,0 -> banks {3,1,3,0}: bank 3 twice -> 2 stages.
  std::vector<std::uint64_t> warp = {7, 5, 15, 0};
  EXPECT_EQ(dmm_stages(warp, 4), 2u);
  EXPECT_FALSE(is_conflict_free(warp, 4));
}

TEST(Access, DmmStagesSecondWarp) {
  // 10,11,12,15 -> banks {2,3,0,3}: bank 3 collides -> 2 stages.
  std::vector<std::uint64_t> warp = {10, 11, 12, 15};
  EXPECT_EQ(dmm_stages(warp, 4), 2u);
}

TEST(Access, WorstCaseSameBank) {
  std::vector<std::uint64_t> warp = {0, 4, 8, 12};  // all bank 0 with w=4
  EXPECT_EQ(dmm_stages(warp, 4), 4u);
}

TEST(Access, NoAccessThreadsIgnored) {
  std::vector<std::uint64_t> warp = {kNoAccess, 1, kNoAccess, 3};
  EXPECT_EQ(umm_stages(warp, 4), 1u);
  EXPECT_EQ(dmm_stages(warp, 4), 1u);
  std::vector<std::uint64_t> idle = {kNoAccess, kNoAccess};
  EXPECT_EQ(umm_stages(idle, 4), 0u);
  EXPECT_EQ(dmm_stages(idle, 4), 0u);
}

TEST(RoundCounts, TableOne) {
  EXPECT_EQ(rounds::d_designated.global_rounds(), 3u);
  EXPECT_EQ(rounds::d_designated.shared_rounds(), 0u);
  EXPECT_EQ(rounds::s_designated.global_rounds(), 3u);

  EXPECT_EQ(rounds::transpose.coalesced_read, 1u);
  EXPECT_EQ(rounds::transpose.conflict_free_write, 1u);
  EXPECT_EQ(rounds::transpose.total_rounds(), 4u);

  EXPECT_EQ(rounds::row_wise.coalesced_read, 3u);
  EXPECT_EQ(rounds::row_wise.coalesced_write, 1u);
  EXPECT_EQ(rounds::row_wise.conflict_free_read, 2u);
  EXPECT_EQ(rounds::row_wise.conflict_free_write, 2u);

  EXPECT_EQ(rounds::column_wise.coalesced_read, 5u);
  EXPECT_EQ(rounds::column_wise.coalesced_write, 3u);
  EXPECT_EQ(rounds::column_wise.conflict_free_read, 4u);
  EXPECT_EQ(rounds::column_wise.conflict_free_write, 4u);

  // The abstract's headline: 32 rounds total, 16 global all coalesced.
  EXPECT_EQ(rounds::scheduled.coalesced_read, 11u);
  EXPECT_EQ(rounds::scheduled.coalesced_write, 5u);
  EXPECT_EQ(rounds::scheduled.conflict_free_read, 8u);
  EXPECT_EQ(rounds::scheduled.conflict_free_write, 8u);
  EXPECT_EQ(rounds::scheduled.global_rounds(), 16u);
  EXPECT_EQ(rounds::scheduled.total_rounds(), 32u);
  EXPECT_EQ(rounds::scheduled.casual_read_global + rounds::scheduled.casual_write_global, 0u);
}

TEST(Cost, CoalescedRound) {
  const MachineParams p{.width = 32, .latency = 100, .dmms = 8};
  // n/w stages + l - 1.
  EXPECT_EQ(coalesced_round_time(3200, p), 100u + 100 - 1);
}

TEST(Cost, ConflictFreeRoundSplitsAcrossDmms) {
  const MachineParams p{.width = 32, .latency = 100, .dmms = 8};
  EXPECT_EQ(conflict_free_round_time(32 * 8 * 10, p), 10u);
}

TEST(Cost, DDesignatedMatchesLemma4) {
  const MachineParams p{.width = 32, .latency = 100, .dmms = 8};
  const std::uint64_t n = 1 << 20;
  const std::uint64_t d = n;  // worst-case distribution
  EXPECT_EQ(d_designated_time(n, d, p), 2 * (n / 32 + 99) + (n + 99));
}

TEST(Cost, ScheduledIndependentOfDistribution) {
  const MachineParams p = MachineParams::gtx680();
  const std::uint64_t n = 1 << 20;
  // 16 coalesced global rounds + 16 conflict-free shared rounds.
  EXPECT_EQ(scheduled_time(n, p),
            16 * coalesced_round_time(n, p) + 16 * conflict_free_round_time(n, p));
  EXPECT_EQ(scheduled_time(n, p), 2 * row_wise_time(n, p) + column_wise_time(n, p));
}

TEST(Cost, ScheduledBeatsConventionalForLargeDistribution) {
  const MachineParams p = MachineParams::gtx680();
  const std::uint64_t n = 1 << 22;
  // Bit-reversal-like distribution d_w(P) = n: conventional pays ~n
  // while scheduled pays ~16 n/w = n/2.
  EXPECT_LT(scheduled_time(n, p), d_designated_time(n, n, p));
  // Identity distribution n/w: conventional wins.
  EXPECT_GT(scheduled_time(n, p), d_designated_time(n, n / p.width, p));
}

TEST(Cost, LowerBoundAndOptimality) {
  const MachineParams p = MachineParams::gtx680();
  for (std::uint64_t n : {1ull << 16, 1ull << 20, 1ull << 24}) {
    const std::uint64_t lb = lower_bound(n, p);
    EXPECT_EQ(lb, std::max<std::uint64_t>(2 * n / p.width, p.latency));
    // Scheduled is within a constant factor (~16x) of the lower bound:
    // O(n/w + l) — the optimality claim of Theorem 9.
    EXPECT_LE(scheduled_time(n, p), 17 * lb + 32 * p.latency);
  }
}

}  // namespace
}  // namespace hmm::model
