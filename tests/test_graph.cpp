#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "graph/bipartite.hpp"
#include "graph/coloring.hpp"
#include "graph/euler_split.hpp"
#include "graph/hopcroft_karp.hpp"
#include "util/rng.hpp"

namespace hmm::graph {
namespace {

/// Random k-regular bipartite multigraph on nodes x nodes: union of k
/// random perfect matchings (each a random permutation).
BipartiteMultigraph random_regular(std::uint32_t nodes, std::uint32_t degree,
                                   std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  BipartiteMultigraph g(nodes, nodes);
  std::vector<std::uint32_t> perm(nodes);
  for (std::uint32_t k = 0; k < degree; ++k) {
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::uint32_t i = nodes - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.bounded(i + 1)]);
    }
    for (std::uint32_t u = 0; u < nodes; ++u) g.add_edge(u, perm[u]);
  }
  return g;
}

TEST(Bipartite, DegreesAndRegularity) {
  BipartiteMultigraph g(3, 3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 0);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.left_degree(0), 2u);
  EXPECT_EQ(g.right_degree(2), 1u);
  EXPECT_FALSE(g.regular_degree().has_value());
}

TEST(Bipartite, RegularDetection) {
  BipartiteMultigraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 1);
  g.add_edge(1, 0);
  ASSERT_TRUE(g.regular_degree().has_value());
  EXPECT_EQ(*g.regular_degree(), 2u);
}

TEST(Bipartite, ParallelEdgesAllowed) {
  BipartiteMultigraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 0);
  g.add_edge(1, 1);
  g.add_edge(1, 1);
  ASSERT_TRUE(g.regular_degree().has_value());
  EXPECT_EQ(*g.regular_degree(), 2u);
}

TEST(EulerSplit, OnceBalancesDegrees) {
  BipartiteMultigraph g = random_regular(16, 4, 1);
  std::vector<std::uint32_t> all(g.edge_count());
  std::iota(all.begin(), all.end(), 0u);
  const auto half = euler_split_once(g, all);
  std::vector<std::uint32_t> l0(16, 0), r0(16, 0);
  for (std::uint32_t k = 0; k < all.size(); ++k) {
    if (half[k]) continue;
    ++l0[g.edge(all[k]).u];
    ++r0[g.edge(all[k]).v];
  }
  for (std::uint32_t u = 0; u < 16; ++u) EXPECT_EQ(l0[u], 2u);
  for (std::uint32_t v = 0; v < 16; ++v) EXPECT_EQ(r0[v], 2u);
}

TEST(EulerSplit, ColoringIsKonig) {
  for (std::uint32_t degree : {1u, 2u, 4u, 8u, 16u}) {
    BipartiteMultigraph g = random_regular(32, degree, degree);
    const EdgeColoring c = color_euler_split(g);
    EXPECT_EQ(c.colors, std::max(degree, 1u));
    EXPECT_TRUE(is_konig_coloring(g, c)) << "degree=" << degree;
  }
}

TEST(EulerSplit, Fig5SizeGraph) {
  // The paper's Fig. 5: a 4-regular bipartite graph on 4+4 nodes,
  // 4-edge-colorable.
  BipartiteMultigraph g = random_regular(4, 4, 99);
  const EdgeColoring c = color_euler_split(g);
  EXPECT_EQ(c.colors, 4u);
  EXPECT_TRUE(is_konig_coloring(g, c));
}

TEST(EulerSplit, ParallelEdgesGetDistinctColors) {
  BipartiteMultigraph g(2, 2);
  // Two parallel edges (0,0) and (1,1) pairs -> 2-regular.
  g.add_edge(0, 0);
  g.add_edge(0, 0);
  g.add_edge(1, 1);
  g.add_edge(1, 1);
  const EdgeColoring c = color_euler_split(g);
  EXPECT_TRUE(is_konig_coloring(g, c));
  EXPECT_NE(c.color[0], c.color[1]);
  EXPECT_NE(c.color[2], c.color[3]);
}

TEST(HopcroftKarp, PerfectMatchingOnRegular) {
  for (std::uint32_t degree : {1u, 2u, 3u, 5u, 8u}) {
    BipartiteMultigraph g = random_regular(24, degree, degree * 7);
    const Matching m = hopcroft_karp(g);
    EXPECT_EQ(m.size, 24u) << "degree=" << degree;
    // Matched edges must be a consistent pairing.
    for (std::uint32_t u = 0; u < 24; ++u) {
      ASSERT_NE(m.left_edge[u], Matching::kUnmatched);
      const Edge& e = g.edge(m.left_edge[u]);
      EXPECT_EQ(e.u, u);
      EXPECT_EQ(m.right_edge[e.v], m.left_edge[u]);
    }
  }
}

TEST(HopcroftKarp, IncompleteGraph) {
  BipartiteMultigraph g(3, 3);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  g.add_edge(2, 1);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 2u);  // node 0/1 compete for right 0
}

TEST(MatchingPeel, ColoringIsKonig) {
  for (std::uint32_t degree : {1u, 2u, 3u, 5u, 6u, 7u}) {
    BipartiteMultigraph g = random_regular(20, degree, degree * 3 + 1);
    const EdgeColoring c = color_matching_peel(g);
    EXPECT_EQ(c.colors, degree);
    EXPECT_TRUE(is_konig_coloring(g, c)) << "degree=" << degree;
  }
}

TEST(AlternatingPath, ColoringProperOnRegular) {
  for (std::uint32_t degree : {1u, 2u, 4u, 5u, 8u}) {
    BipartiteMultigraph g = random_regular(20, degree, degree + 100);
    const EdgeColoring c = color_alternating_path(g);
    EXPECT_EQ(c.colors, degree);
    EXPECT_TRUE(is_proper_coloring(g, c)) << "degree=" << degree;
    // On a regular graph a proper delta-coloring is automatically König.
    EXPECT_TRUE(is_konig_coloring(g, c)) << "degree=" << degree;
  }
}

TEST(AlternatingPath, IrregularGraph) {
  BipartiteMultigraph g(4, 4);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 0);
  g.add_edge(2, 1);
  const EdgeColoring c = color_alternating_path(g);
  EXPECT_EQ(c.colors, 3u);  // max degree
  EXPECT_TRUE(is_proper_coloring(g, c));
}

TEST(Coloring, AllAlgorithmsAgreeOnValidity) {
  BipartiteMultigraph g = random_regular(16, 8, 5);
  for (auto algo : {ColoringAlgorithm::kEulerSplit, ColoringAlgorithm::kMatchingPeel,
                    ColoringAlgorithm::kAlternatingPath, ColoringAlgorithm::kAuto}) {
    const EdgeColoring c = color_edges(g, algo);
    EXPECT_TRUE(is_konig_coloring(g, c));
  }
}

TEST(Coloring, ColorClassesPartitionEdges) {
  BipartiteMultigraph g = random_regular(16, 4, 77);
  const EdgeColoring c = color_euler_split(g);
  const auto classes = color_classes(g, c);
  std::size_t total = 0;
  for (const auto& cls : classes) {
    EXPECT_EQ(cls.size(), 16u);  // perfect matching
    total += cls.size();
  }
  EXPECT_EQ(total, g.edge_count());
}

TEST(Coloring, ValidationRejectsBadColoring) {
  BipartiteMultigraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 1);
  EdgeColoring bad;
  bad.colors = 2;
  bad.color = {0, 0, 1, 1};  // node 0 has two color-0 edges
  EXPECT_FALSE(is_proper_coloring(g, bad));
  EdgeColoring good;
  good.colors = 2;
  good.color = {0, 1, 1, 0};
  EXPECT_TRUE(is_proper_coloring(g, good));
  EXPECT_TRUE(is_konig_coloring(g, good));
}

TEST(EulerSplit, DisconnectedComponents) {
  // Two disjoint 2-regular sub-multigraphs; the circuit walker must
  // visit both components.
  BipartiteMultigraph g(4, 4);
  for (std::uint32_t k = 0; k < 2; ++k) {
    g.add_edge(0, 0);
    g.add_edge(1, 1);
    g.add_edge(2, 2);
    g.add_edge(3, 3);
  }
  const EdgeColoring c = color_euler_split(g);
  EXPECT_TRUE(is_konig_coloring(g, c));
}

TEST(EulerSplit, TwoNodeChains) {
  // Minimal graph: 1+1 nodes, degree 4 of parallel edges.
  BipartiteMultigraph g(1, 1);
  for (int i = 0; i < 4; ++i) g.add_edge(0, 0);
  const EdgeColoring c = color_euler_split(g);
  EXPECT_TRUE(is_konig_coloring(g, c));
  // All four parallel edges got distinct colors.
  std::set<std::uint32_t> colors(c.color.begin(), c.color.end());
  EXPECT_EQ(colors.size(), 4u);
}

// Property sweep: Euler split stays König across a grid of sizes/degrees.
class EulerSweep : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(EulerSweep, Konig) {
  const auto [nodes, degree] = GetParam();
  BipartiteMultigraph g = random_regular(nodes, degree, nodes * 31 + degree);
  const EdgeColoring c = color_euler_split(g);
  EXPECT_TRUE(is_konig_coloring(g, c));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EulerSweep,
                         ::testing::Combine(::testing::Values(4u, 8u, 32u, 128u, 512u),
                                            ::testing::Values(1u, 2u, 8u, 32u, 64u)));

}  // namespace
}  // namespace hmm::graph
