/// Tests for the permutation service runtime (src/runtime/): plan-key
/// fingerprints, LRU plan cache, batched async executor, and metrics.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/permuter.hpp"
#include "perm/generators.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/metrics.hpp"
#include "runtime/phase.hpp"
#include "runtime/plan_cache.hpp"
#include "test_helpers.hpp"

namespace hmm {
namespace {

using model::MachineParams;
using runtime::Fingerprint;

constexpr int kScheduledTag = static_cast<int>(core::Strategy::kScheduled);
constexpr int kAutoTag = static_cast<int>(core::Strategy::kAuto);

// ---------------------------------------------------------------- fingerprint

TEST(Fingerprint, DeterministicAndEqualForEqualInputs) {
  const perm::Permutation p = perm::by_name("random", 1024, 7);
  const perm::Permutation q = perm::by_name("random", 1024, 7);  // same seed -> same mapping
  const MachineParams mp = MachineParams::gtx680();
  EXPECT_EQ(runtime::fingerprint_plan_key(p, mp, kAutoTag, 4),
            runtime::fingerprint_plan_key(q, mp, kAutoTag, 4));
  EXPECT_EQ(runtime::fingerprint_permutation(p), runtime::fingerprint_permutation(q));
}

TEST(Fingerprint, DiscriminatesEveryKeyComponent) {
  const MachineParams mp = MachineParams::gtx680();
  const perm::Permutation p = perm::bit_reversal(1024);
  const Fingerprint base = runtime::fingerprint_plan_key(p, mp, kAutoTag, 4);

  // Different permutation (even by a single transposition).
  util::aligned_vector<std::uint32_t> tweaked(p.data().begin(), p.data().end());
  std::swap(tweaked[0], tweaked[1]);
  EXPECT_NE(base,
            runtime::fingerprint_plan_key(perm::Permutation(std::move(tweaked)), mp, kAutoTag, 4));

  // Different machine parameters.
  MachineParams other = mp;
  other.latency += 1;
  EXPECT_NE(base, runtime::fingerprint_plan_key(p, other, kAutoTag, 4));

  // Different strategy and element width.
  EXPECT_NE(base, runtime::fingerprint_plan_key(p, mp, kScheduledTag, 4));
  EXPECT_NE(base, runtime::fingerprint_plan_key(p, mp, kAutoTag, 8));
}

TEST(Fingerprint, PermutationSizeIsPartOfTheKey) {
  // identical(n) mappings are prefixes of each other; the length field
  // must still separate them.
  EXPECT_NE(runtime::fingerprint_permutation(perm::identical(256)),
            runtime::fingerprint_permutation(perm::identical(512)));
}

TEST(Fingerprint, MappingSpanAgreesWithPermutation) {
  // fingerprint_mapping over raw words IS the wire plan id, so it must
  // agree bit-for-bit with fingerprint_permutation of a Permutation
  // built from the same words — across sizes and mapping families.
  for (const std::uint64_t n : {16ull, 256ull, 4096ull}) {
    for (const char* name : {"identical", "bit-reversal", "random"}) {
      const perm::Permutation p = perm::by_name(name, n, 11);
      const std::span<const std::uint32_t> words(p.data().data(), p.data().size());
      EXPECT_EQ(runtime::fingerprint_mapping(words), runtime::fingerprint_permutation(p))
          << name << " n=" << n;

      // Same words in a freshly copied vector (different address, same
      // content) — the hash is over values, never identity.
      util::aligned_vector<std::uint32_t> copy(words.begin(), words.end());
      EXPECT_EQ(runtime::fingerprint_mapping({copy.data(), copy.size()}),
                runtime::fingerprint_permutation(p))
          << name << " n=" << n;
    }
  }
}

TEST(Fingerprint, MappingSpanDiscriminatesContentAndLength) {
  const perm::Permutation p = perm::bit_reversal(512);
  const std::span<const std::uint32_t> words(p.data().data(), p.data().size());
  const Fingerprint base = runtime::fingerprint_mapping(words);

  // A single swapped pair changes the hash.
  util::aligned_vector<std::uint32_t> tweaked(words.begin(), words.end());
  std::swap(tweaked[3], tweaked[4]);
  EXPECT_NE(base, runtime::fingerprint_mapping({tweaked.data(), tweaked.size()}));

  // A strict prefix changes the hash (length is mixed in).
  EXPECT_NE(base, runtime::fingerprint_mapping(words.first(words.size() / 2)));
}

// ----------------------------------------------------------------- histogram

TEST(LogHistogram, QuantilesAndCounters) {
  runtime::LogHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
  for (std::uint64_t v : {100ull, 200ull, 400ull, 100000ull}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 100700u);
  EXPECT_EQ(h.max(), 100000u);
  // p50 falls in the bucket of 100/200-ish values; log2 resolution
  // guarantees within a factor of two.
  EXPECT_GE(h.quantile(0.5), 64u);
  EXPECT_LE(h.quantile(0.5), 512u);
  EXPECT_LE(h.quantile(0.95), h.max());
  EXPECT_GE(h.quantile(1.0), h.quantile(0.5));
}

TEST(LogHistogram, EmptyHistogramReportsZeros) {
  const runtime::LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(LogHistogram, SingleSampleDominatesEveryQuantile) {
  runtime::LogHistogram h;
  h.record(777);  // bucket [512, 1024), geometric midpoint 768
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 777u);
  EXPECT_EQ(h.max(), 777u);
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(h.quantile(q), 768u) << "q=" << q;
  }
}

TEST(LogHistogram, PowerOfTwoBoundariesLandInTheUpperBucket) {
  // 2^k opens bucket k: [2^k, 2^(k+1)); 2^k - 1 closes bucket k-1.
  runtime::LogHistogram below;
  below.record(1023);
  EXPECT_EQ(below.quantile(0.5), 768u);  // midpoint of [512, 1024)

  runtime::LogHistogram at;
  at.record(1024);
  // Midpoint of [1024, 2048) is 1536, but quantiles are capped by the
  // exact max, which is 1024 here.
  EXPECT_EQ(at.quantile(0.5), 1024u);

  runtime::LogHistogram zero_and_one;
  zero_and_one.record(0);  // value 0 shares bucket 0 with value 1
  zero_and_one.record(1);
  EXPECT_EQ(zero_and_one.count(), 2u);
  EXPECT_EQ(zero_and_one.max(), 1u);
  EXPECT_LE(zero_and_one.quantile(1.0), 1u);
}

TEST(LogHistogram, ExtremeQuantileArgumentsAreClamped) {
  runtime::LogHistogram h;
  for (std::uint64_t v = 1; v <= 64; ++v) h.record(v);
  EXPECT_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_EQ(h.quantile(2.0), h.quantile(1.0));
  EXPECT_LE(h.quantile(1.0), h.max());
  EXPECT_GE(h.quantile(1.0), h.quantile(0.0));
}

TEST(LogHistogram, ConcurrentRecordAndSnapshot) {
  // Recorders race a reader that keeps taking quantile/count/sum
  // digests; run under TSan in CI. The reader only checks invariants
  // that hold for any interleaving.
  runtime::LogHistogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20'000;
  std::atomic<bool> stop{false};

  std::thread reader([&h, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t count = h.count();
      const std::uint64_t q = h.quantile(0.5);
      EXPECT_LE(q, 2 * h.max() + 1);
      EXPECT_LE(count, kThreads * kPerThread);
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record((i % 1024) + static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_GE(h.max(), 1023u);
  EXPECT_LE(h.max(), 1023u + kThreads);
}

// ---------------------------------------------------------------- plan cache

TEST(PlanCache, HitReturnsSameCompiledPermuter) {
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  const perm::Permutation p = perm::bit_reversal(4096);
  const MachineParams mp = MachineParams::gtx680();

  auto h1 = cache.acquire<float>(p, mp);
  auto h2 = cache.acquire<float>(p, mp);
  EXPECT_EQ(h1.get(), h2.get());  // same compiled object, no rebuild

  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.lookups, 2u);
  EXPECT_EQ(snap.hits, 1u);
  EXPECT_EQ(snap.misses, 1u);
  EXPECT_EQ(snap.plan_builds, 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), h1->compiled_bytes());
}

TEST(PlanCache, ElementTypeSeparatesEntries) {
  runtime::PlanCache cache;
  const perm::Permutation p = perm::bit_reversal(4096);
  auto hf = cache.acquire<float>(p);
  auto hd = cache.acquire<double>(p);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_NE(static_cast<const void*>(hf.get()), static_cast<const void*>(hd.get()));
}

TEST(PlanCache, SameWidthElementTypesDoNotAlias) {
  // float and int32 have the same sizeof, so the element width alone
  // cannot separate them; the per-type token mixed into the key must.
  // (Previously the aliased slot failed its typed downcast and the
  // process aborted on legitimate API use.)
  runtime::PlanCache cache;
  const perm::Permutation p = perm::bit_reversal(4096);
  auto hf = cache.acquire<float>(p);
  auto hi = cache.acquire<std::int32_t>(p);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_NE(static_cast<const void*>(hf.get()), static_cast<const void*>(hi.get()));
  // And the typed keys themselves differ while widths agree.
  EXPECT_NE(runtime::PlanCache::plan_key<float>(p), runtime::PlanCache::plan_key<std::int32_t>(p));
}

TEST(PlanCache, EvictsLeastRecentlyUsedUnderByteCap) {
  const MachineParams mp = MachineParams::gtx680();
  const perm::Permutation pa = perm::bit_reversal(4096);
  const perm::Permutation pb = perm::shuffle(4096);
  const perm::Permutation pc = perm::gray(4096);

  // Size the cap so exactly two compiled entries fit.
  const std::uint64_t one_entry =
      core::OfflinePermuter<float>(pa, mp, core::Strategy::kScheduled).compiled_bytes();
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{.max_bytes = 2 * one_entry + one_entry / 2},
                           &metrics);

  const auto fpa = runtime::PlanCache::plan_key<float>(pa, mp, core::Strategy::kScheduled);
  const auto fpb = runtime::PlanCache::plan_key<float>(pb, mp, core::Strategy::kScheduled);
  const auto fpc = runtime::PlanCache::plan_key<float>(pc, mp, core::Strategy::kScheduled);

  (void)cache.acquire<float>(pa, mp, core::Strategy::kScheduled);
  (void)cache.acquire<float>(pb, mp, core::Strategy::kScheduled);
  // Touch A so B becomes the LRU entry...
  (void)cache.acquire<float>(pa, mp, core::Strategy::kScheduled);
  // ...then C's insert must evict B, not A.
  (void)cache.acquire<float>(pc, mp, core::Strategy::kScheduled);

  EXPECT_TRUE(cache.contains(fpa));
  EXPECT_FALSE(cache.contains(fpb));
  EXPECT_TRUE(cache.contains(fpc));
  EXPECT_LE(cache.bytes(), cache.config().max_bytes);
  EXPECT_EQ(metrics.snapshot().evictions, 1u);
}

TEST(PlanCache, OversizedEntryIsReturnedButNotRetained) {
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{.max_bytes = 0}, &metrics);
  const perm::Permutation p = perm::bit_reversal(4096);

  auto h = cache.acquire<float>(p);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(metrics.snapshot().evictions, 1u);

  // The returned handle still executes correctly after "eviction".
  const std::uint64_t n = p.size();
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n), scratch(h->scratch_elements());
  h->permute(std::span<const float>(a.data(), n), std::span<float>(b.data(), n),
             std::span<float>(scratch.data(), scratch.size()));
  for (std::uint64_t i = 0; i < n; i += 61) EXPECT_EQ(b[p(i)], a[i]);
}

TEST(PlanCache, ClearDuringInFlightBuildDoesNotResurrectEntry) {
  // Regression: clear() drops the pending slot of a still-running
  // build. The builder's commit() must notice its generation is gone —
  // completing a resurrected slot would double-push the key into the
  // LRU list and drift bytes_.
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  const perm::Permutation p = perm::bit_reversal(4096);

  {
    // Stall the builder deterministically inside the build section.
    runtime::ScopedFaultInjection chaos(
        {.seed = 1,
         .rate = 1.0,
         .stall_ms = 250,
         .sites = std::string(runtime::fault_sites::kPlanBuildStall)});
    std::thread builder([&] {
      auto h = cache.acquire<float>(p);
      EXPECT_NE(h, nullptr);  // the stale build still serves its caller
    });
    // Wait for the pending slot, then clear while the build is stalled.
    for (int spin = 0; cache.entries() == 0 && spin < 2000; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(cache.entries(), 1u);
    cache.clear();
    EXPECT_EQ(cache.entries(), 0u);
    builder.join();
  }

  // The stale commit must not have resurrected the key.
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_FALSE(cache.contains(runtime::PlanCache::plan_key<float>(p)));

  // A fresh acquire rebuilds and is retained exactly once.
  auto h = cache.acquire<float>(p);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), h->compiled_bytes());
  auto h2 = cache.acquire<float>(p);
  EXPECT_EQ(h.get(), h2.get());
  EXPECT_EQ(cache.bytes(), h->compiled_bytes());  // no double-count
}

TEST(PlanCache, TryAcquireReturnsStatusInsteadOfThrowing) {
  runtime::ScopedFaultInjection chaos(
      {.seed = 3, .rate = 1.0, .sites = std::string(runtime::fault_sites::kPlanBuild)});
  runtime::PlanCache cache;
  const perm::Permutation p = perm::bit_reversal(1024);
  auto result = cache.try_acquire<float>(p);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), runtime::StatusCode::kPlanBuildFailed);
  // The failed key was erased: a later acquire (faults off) succeeds.
  runtime::FaultInjector::instance().disarm();
  auto retry = cache.try_acquire<float>(p);
  ASSERT_TRUE(retry.ok());
  EXPECT_NE(retry.value(), nullptr);
}

TEST(PlanCache, ConcurrentAcquiresBuildOnce) {
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  const perm::Permutation p = perm::by_name("random", 8192, 11);
  const MachineParams mp = MachineParams::gtx680();

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const core::OfflinePermuter<float>>> handles(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] { handles[t] = cache.acquire<float>(p, mp); });
    }
    for (auto& th : threads) th.join();
  }
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[0].get(), handles[t].get());

  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.plan_builds, 1u);  // single-flight: one compile for 8 racers
  EXPECT_EQ(snap.lookups, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(snap.hits + snap.misses, snap.lookups);
}

// ------------------------------------------------------------------ executor

TEST(Executor, ConcurrentSubmitsMatchSerialPermute) {
  const std::uint64_t n = 1 << 13;
  const MachineParams mp = MachineParams::gtx680();
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  runtime::Executor executor(util::ThreadPool::global(), &metrics);

  // Two distinct plans in flight at once (scheduled + whatever kAuto
  // picks for the random permutation), eight submitting threads.
  const perm::Permutation p1 = perm::bit_reversal(n);
  const perm::Permutation p2 = perm::by_name("random", n, 3);
  auto h1 = cache.acquire<float>(p1, mp, core::Strategy::kScheduled);
  auto h2 = cache.acquire<float>(p2, mp);

  // Serial ground truth via the stateful single-thread path.
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> expect1(n), expect2(n);
  core::OfflinePermuter<float>(p1, mp, core::Strategy::kScheduled)
      .permute(std::span<const float>(a.data(), n), std::span<float>(expect1.data(), n));
  core::OfflinePermuter<float>(p2, mp).permute(std::span<const float>(a.data(), n),
                                               std::span<float>(expect2.data(), n));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::vector<util::aligned_vector<float>> outs(kThreads * kPerThread);
  for (auto& o : outs) o.resize(n);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::future<void>> futs;
      for (int r = 0; r < kPerThread; ++r) {
        auto& h = (t + r) % 2 == 0 ? h1 : h2;
        futs.push_back(executor.submit<float>(h, std::span<const float>(a.data(), n),
                                              std::span<float>(outs[t * kPerThread + r].data(), n)));
      }
      for (auto& f : futs) f.get();
    });
  }
  for (auto& th : threads) th.join();
  executor.wait_idle();
  EXPECT_EQ(executor.in_flight(), 0u);

  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kPerThread; ++r) {
      const auto& expect = (t + r) % 2 == 0 ? expect1 : expect2;
      const auto& out = outs[t * kPerThread + r];
      ASSERT_EQ(0, std::memcmp(out.data(), expect.data(), n * sizeof(float)))
          << "thread " << t << " request " << r << " diverged from serial permute";
    }
  }

  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.completed, snap.submitted);
  EXPECT_EQ(snap.failed, 0u);
  EXPECT_EQ(snap.execute_count, snap.completed);
  EXPECT_GE(snap.queue_high_water, 1u);
  EXPECT_LE(snap.execute_ns_p50, std::max<std::uint64_t>(snap.execute_ns_p95, 1));
  EXPECT_LE(snap.execute_ns_p95, std::max<std::uint64_t>(snap.execute_ns_max, 1));
}

TEST(Executor, FutureDeliversResultPerRequest) {
  const std::uint64_t n = 1 << 12;
  runtime::PlanCache cache;
  runtime::Executor executor(util::ThreadPool::global());
  const perm::Permutation p = perm::shuffle(n);
  auto h = cache.acquire<float>(p);

  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);
  auto fut = executor.submit<float>(h, std::span<const float>(a.data(), n),
                                    std::span<float>(b.data(), n));
  fut.get();
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(b[p(i)], a[i]);
}

TEST(Executor, ThrowingRequestDeliversExceptionAndReleasesItsSlot) {
  // The legacy submit path: a failed request must surface its exception
  // through the future, decrement in_flight_, and count as failed in
  // the metrics — a wedged slot would hang wait_idle() and teardown.
  // Regression (PR 4): a failed request used to count as completed AND
  // failed; the counters are disjoint now.
  const std::uint64_t n = 1 << 12;
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  runtime::Executor executor(util::ThreadPool::global(), &metrics);
  auto h = cache.acquire<float>(perm::bit_reversal(n));
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);

  runtime::ScopedFaultInjection chaos(
      {.seed = 4, .rate = 1.0, .sites = std::string(runtime::fault_sites::kExecutorAlloc)});
  auto fut = executor.submit<float>(h, std::span<const float>(a.data(), n),
                                    std::span<float>(b.data(), n));
  EXPECT_THROW(fut.get(), runtime::FaultInjectedError);
  executor.wait_idle();
  EXPECT_EQ(executor.in_flight(), 0u);

  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.submitted, 1u);
  EXPECT_EQ(snap.completed, 0u);
  EXPECT_EQ(snap.failed, 1u);
}

TEST(Executor, RepeatedFailuresDoNotWedgeTheExecutor) {
  const std::uint64_t n = 1 << 12;
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  runtime::Executor executor(util::ThreadPool::global(), &metrics);
  auto h = cache.acquire<float>(perm::bit_reversal(n));
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);

  constexpr int kRequests = 16;
  {
    runtime::ScopedFaultInjection chaos(
        {.seed = 4, .rate = 1.0, .sites = std::string(runtime::fault_sites::kExecutorAlloc)});
    std::vector<std::future<void>> futs;
    for (int r = 0; r < kRequests; ++r) {
      futs.push_back(executor.submit<float>(h, std::span<const float>(a.data(), n),
                                            std::span<float>(b.data(), n)));
    }
    for (auto& f : futs) EXPECT_THROW(f.get(), runtime::FaultInjectedError);
    executor.wait_idle();  // must return despite every request failing
  }
  EXPECT_EQ(executor.in_flight(), 0u);
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.failed, static_cast<std::uint64_t>(kRequests));

  // The executor still serves healthy requests afterwards.
  auto fut = executor.submit<float>(h, std::span<const float>(a.data(), n),
                                    std::span<float>(b.data(), n));
  fut.get();
  const perm::Permutation p = perm::bit_reversal(n);
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(b[p(i)], a[i]);
}

TEST(Executor, WaitIdleForReportsStalledDrainThenRecovers) {
  const std::uint64_t n = 1 << 12;
  runtime::PlanCache cache;
  runtime::Executor executor(util::ThreadPool::global());
  auto h = cache.acquire<float>(perm::bit_reversal(n));
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);

  // Idle executor: any timeout (even zero) reports idle immediately.
  EXPECT_TRUE(executor.wait_idle_for(std::chrono::nanoseconds(0)));

  std::future<void> fut;
  {
    // Stall the worker long enough that a short wait_idle_for times out.
    runtime::ScopedFaultInjection chaos(
        {.seed = 6,
         .rate = 1.0,
         .stall_ms = 300,
         .sites = std::string(runtime::fault_sites::kExecutorStall)});
    fut = executor.submit<float>(h, std::span<const float>(a.data(), n),
                                 std::span<float>(b.data(), n));
    EXPECT_FALSE(executor.wait_idle_for(std::chrono::milliseconds(10)));
    EXPECT_GE(executor.in_flight(), 1u);
    fut.get();  // the stalled request still completes
  }
  EXPECT_TRUE(executor.wait_idle_for(std::chrono::seconds(30)));
  EXPECT_EQ(executor.in_flight(), 0u);
}

// ------------------------------------------------------------------- metrics

TEST(Metrics, CounterConsistencyUnderMixedWorkload) {
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  util::Xoshiro256 rng(5);
  const MachineParams mp = MachineParams::gtx680();

  std::vector<perm::Permutation> pop;
  for (int i = 0; i < 4; ++i) pop.push_back(perm::by_name("random", 1024, 100 + i));
  for (int r = 0; r < 64; ++r) {
    (void)cache.acquire<float>(pop[rng.bounded(pop.size())], mp);
  }

  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.lookups, 64u);
  EXPECT_EQ(snap.hits + snap.misses, snap.lookups);
  EXPECT_EQ(snap.misses, 4u);  // one compile per distinct permutation
  EXPECT_EQ(snap.plan_builds, 4u);
  EXPECT_GT(snap.plan_build_ns_total, 0u);
  EXPECT_GE(snap.plan_build_ns_total, snap.plan_build_ns_max);
}

TEST(Metrics, JsonAndTableRender) {
  runtime::ServiceMetrics metrics;
  metrics.record_lookup(true);
  metrics.record_lookup(false);
  metrics.record_plan_build(1234567);
  metrics.record_submit(3);
  metrics.record_execute(42000, true);

  const auto snap = metrics.snapshot();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"lookups\":2"), std::string::npos);
  EXPECT_NE(json.find("\"hits\":1"), std::string::npos);
  EXPECT_NE(json.find("\"queue_high_water\":3"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  std::ostringstream os;
  snap.to_table().print(os);
  EXPECT_NE(os.str().find("cache hit rate"), std::string::npos);
}

// Regression (PR 4): record_execute(ns, ok=false) used to bump
// `completed` as well as `failed`, so error rates computed from the
// snapshot silently undercounted.
TEST(Metrics, CompletedExcludesFailures) {
  runtime::ServiceMetrics metrics;
  metrics.record_execute(1'000, true);
  metrics.record_execute(2'000, false);
  metrics.record_execute(3'000, false);

  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.completed, 1u);
  EXPECT_EQ(snap.failed, 2u);
  // The latency histogram still sees every outcome.
  EXPECT_EQ(snap.execute_count, 3u);
  EXPECT_EQ(snap.execute_ns_sum, 6'000u);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"completed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"failed\":2"), std::string::npos);
}

// ---------------------------------------------------------------- phases

TEST(Metrics, PhaseBreakdownFlushesOnlyTouchedPhases) {
  using runtime::Phase;
  runtime::ServiceMetrics metrics;

  runtime::PhaseBreakdown breakdown;
  breakdown.add(Phase::kPlanBuild, 5'000);
  breakdown.add(Phase::kQueueWait, 250);
  breakdown.add(Phase::kQueueWait, 750);  // accumulates within a request
  EXPECT_TRUE(breakdown.touched(Phase::kPlanBuild));
  EXPECT_FALSE(breakdown.touched(Phase::kAdmissionWait));
  EXPECT_EQ(breakdown.total_ns(), 6'000u);
  metrics.record_phases(breakdown);

  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.phase(Phase::kPlanBuild).count, 1u);
  EXPECT_EQ(snap.phase(Phase::kPlanBuild).ns_sum, 5'000u);
  EXPECT_EQ(snap.phase(Phase::kQueueWait).count, 1u);
  EXPECT_EQ(snap.phase(Phase::kQueueWait).ns_sum, 1'000u);
  // Untouched phases must not be polluted with zero-valued samples.
  EXPECT_EQ(snap.phase(Phase::kAdmissionWait).count, 0u);
  EXPECT_EQ(snap.phase(Phase::kKernelRowPass1).count, 0u);
}

TEST(Metrics, PhasesRenderInJsonTableAndPrometheus) {
  using runtime::Phase;
  runtime::ServiceMetrics metrics;
  metrics.record_phase(Phase::kSerialize, 12'345);
  metrics.record_phase(Phase::kQueueWait, 1'000'000);

  const auto snap = metrics.snapshot();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"serialize\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\":{\"count\":1"), std::string::npos);

  // The scraper used by permd_client/permd_loadgen reads back what
  // to_json wrote.
  // to_json writes every phase (zero-count ones included) so scrapers
  // see a stable schema; the two recorded phases carry real samples.
  const std::vector<runtime::PhaseScrape> scraped = runtime::scrape_phases_json(json);
  ASSERT_EQ(scraped.size(), static_cast<std::size_t>(runtime::kPhaseCount));
  bool saw_serialize = false;
  for (const runtime::PhaseScrape& row : scraped) {
    if (row.label == "serialize") {
      saw_serialize = true;
      EXPECT_EQ(row.count, 1u);
      EXPECT_EQ(row.ns_sum, 12'345u);
      EXPECT_EQ(row.max, 12'345u);
    } else if (row.label != "queue_wait") {
      EXPECT_EQ(row.count, 0u) << row.label;
    }
  }
  EXPECT_TRUE(saw_serialize);

  std::ostringstream os;
  snap.to_table().print(os);
  EXPECT_NE(os.str().find("serialize"), std::string::npos);
  EXPECT_NE(os.str().find("queue_wait"), std::string::npos);

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("hmm_requests_submitted_total"), std::string::npos);
  EXPECT_NE(prom.find("hmm_phase_duration_seconds_count{phase=\"serialize\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("hmm_phase_duration_seconds{phase=\"queue_wait\",quantile=\"0.5\"}"),
            std::string::npos);
}

TEST(Executor, ScheduledRequestRecordsEveryKernelPhase) {
  // The tentpole end-to-end check at the executor level: one request
  // through the scheduled (5-pass) permuter must leave exactly one
  // sample in every request-path phase and in each of the five kernel
  // passes — and none in the conventional-kernel or serialize phases.
  using runtime::Phase;
  const std::uint64_t n = 1 << 12;
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  runtime::Executor executor(util::ThreadPool::global(), &metrics);

  auto phases = std::make_shared<runtime::PhaseBreakdown>();
  auto h = cache.acquire<float>(perm::bit_reversal(n), MachineParams::gtx680(),
                                core::Strategy::kScheduled, phases.get());
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);

  runtime::Executor::SubmitOptions opts;
  opts.phases = phases;
  auto submitted = executor.try_submit<float>(h, std::span<const float>(a.data(), n),
                                              std::span<float>(b.data(), n), opts);
  ASSERT_TRUE(submitted.ok()) << submitted.status().to_string();
  const auto status = std::move(submitted).value().get();
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  executor.wait_idle();

  const auto snap = metrics.snapshot();
  for (Phase phase : {Phase::kAdmissionWait, Phase::kQueueWait, Phase::kPlanLookup,
                      Phase::kPlanBuild, Phase::kKernelRowPass1, Phase::kKernelTranspose1,
                      Phase::kKernelRowPass2, Phase::kKernelTranspose2,
                      Phase::kKernelRowPass3}) {
    EXPECT_EQ(snap.phase(phase).count, 1u) << runtime::to_string(phase);
  }
  EXPECT_EQ(snap.phase(Phase::kKernelConventional).count, 0u);
  EXPECT_EQ(snap.phase(Phase::kSerialize).count, 0u);
}

TEST(Executor, ConventionalRequestRecordsTheConventionalPhase) {
  using runtime::Phase;
  const std::uint64_t n = 1 << 12;
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  runtime::Executor executor(util::ThreadPool::global(), &metrics);

  auto phases = std::make_shared<runtime::PhaseBreakdown>();
  auto h = cache.acquire<float>(perm::bit_reversal(n), MachineParams::gtx680(),
                                core::Strategy::kSDesignated, phases.get());
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);

  runtime::Executor::SubmitOptions opts;
  opts.phases = phases;
  auto submitted = executor.try_submit<float>(h, std::span<const float>(a.data(), n),
                                              std::span<float>(b.data(), n), opts);
  ASSERT_TRUE(submitted.ok()) << submitted.status().to_string();
  ASSERT_TRUE(std::move(submitted).value().get().is_ok());
  executor.wait_idle();

  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.phase(Phase::kKernelConventional).count, 1u);
  EXPECT_EQ(snap.phase(Phase::kKernelRowPass1).count, 0u);
  EXPECT_EQ(snap.phase(Phase::kQueueWait).count, 1u);
}

// ------------------------------------------------------- same-plan batching

/// Batched config: gather up to `batch` same-plan requests, with a
/// window long enough that full batches always flush at-full (keeps
/// the tests deterministic) but short enough that a logic bug degrades
/// to a slow pass instead of a hang.
runtime::Executor::Config batched_config(std::uint64_t batch,
                                         std::chrono::microseconds delay =
                                             std::chrono::milliseconds(500)) {
  runtime::Executor::Config config;
  config.batch.max_batch = batch;
  config.batch.max_delay = delay;
  return config;
}

/// Submits `count` same-plan requests to a batching executor and
/// checks every output is bit-identical to the serial permute of the
/// same input. Returns the metrics delta of batches executed.
template <class T>
void expect_batched_matches_serial(std::uint64_t n) {
  const MachineParams mp = MachineParams::gtx680();
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  runtime::Executor executor(util::ThreadPool::global(), &metrics, batched_config(8));

  const perm::Permutation p = perm::bit_reversal(n);
  auto h = cache.acquire<T>(p, mp, core::Strategy::kScheduled);

  constexpr std::uint64_t kRequests = 8;
  std::vector<util::aligned_vector<T>> as(kRequests), bs(kRequests), expects(kRequests);
  core::OfflinePermuter<T> serial(p, mp, core::Strategy::kScheduled);
  for (std::uint64_t r = 0; r < kRequests; ++r) {
    as[r].resize(n);
    bs[r].resize(n);
    expects[r].resize(n);
    for (std::uint64_t i = 0; i < n; ++i) as[r][i] = static_cast<T>(i * 3 + r);
    serial.permute(std::span<const T>(as[r].data(), n), std::span<T>(expects[r].data(), n));
  }

  std::vector<std::future<runtime::Status>> futs;
  for (std::uint64_t r = 0; r < kRequests; ++r) {
    auto submitted = executor.try_submit<T>(h, std::span<const T>(as[r].data(), n),
                                            std::span<T>(bs[r].data(), n));
    ASSERT_TRUE(submitted.ok()) << submitted.status().to_string();
    futs.push_back(std::move(submitted).value());
  }
  for (auto& f : futs) ASSERT_TRUE(f.get().is_ok());
  executor.wait_idle();

  for (std::uint64_t r = 0; r < kRequests; ++r) {
    ASSERT_EQ(0, std::memcmp(bs[r].data(), expects[r].data(), n * sizeof(T)))
        << "request " << r << " diverged from the serial permute";
  }
  const auto snap = metrics.snapshot();
  EXPECT_GE(snap.batches_executed, 1u);
  EXPECT_EQ(snap.batched_requests, kRequests);
  EXPECT_EQ(snap.completed, kRequests);
  EXPECT_EQ(snap.failed, 0u);
}

TEST(ExecutorBatching, BatchedOutputBitIdenticalUint32) {
  expect_batched_matches_serial<std::uint32_t>(1 << 12);
}

TEST(ExecutorBatching, BatchedOutputBitIdenticalFloat) {
  expect_batched_matches_serial<float>(1 << 12);
}

TEST(ExecutorBatching, BatchedOutputBitIdenticalDouble) {
  expect_batched_matches_serial<double>(1 << 12);
}

TEST(ExecutorBatching, PartialBatchFlushesOnGatherWindow) {
  // Fewer requests than max_batch: nothing ever fills the group, so
  // completion proves the flusher's max_delay timer fires.
  const std::uint64_t n = 1 << 12;
  const MachineParams mp = MachineParams::gtx680();
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  runtime::Executor executor(util::ThreadPool::global(), &metrics,
                             batched_config(32, std::chrono::milliseconds(2)));
  auto h = cache.acquire<float>(perm::bit_reversal(n), mp, core::Strategy::kScheduled);

  constexpr std::uint64_t kRequests = 5;
  std::vector<util::aligned_vector<float>> as(kRequests), bs(kRequests);
  std::vector<std::future<runtime::Status>> futs;
  for (std::uint64_t r = 0; r < kRequests; ++r) {
    as[r] = test::iota_data<float>(n);
    bs[r].resize(n);
    auto submitted = executor.try_submit<float>(h, std::span<const float>(as[r].data(), n),
                                                std::span<float>(bs[r].data(), n));
    ASSERT_TRUE(submitted.ok()) << submitted.status().to_string();
    futs.push_back(std::move(submitted).value());
  }
  for (auto& f : futs) ASSERT_TRUE(f.get().is_ok());
  executor.wait_idle();
  const auto snap = metrics.snapshot();
  EXPECT_GE(snap.batches_executed, 1u);
  EXPECT_EQ(snap.batched_requests, kRequests);
}

TEST(ExecutorBatching, CancelledItemResolvesWithoutDisturbingItsBatch) {
  const std::uint64_t n = 1 << 12;
  const MachineParams mp = MachineParams::gtx680();
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  // Window long enough that the batch only flushes when it fills.
  runtime::Executor executor(util::ThreadPool::global(), &metrics,
                             batched_config(8, std::chrono::seconds(2)));
  const perm::Permutation p = perm::bit_reversal(n);
  auto h = cache.acquire<float>(p, mp, core::Strategy::kScheduled);

  constexpr std::uint64_t kRequests = 8;
  constexpr std::uint64_t kVictim = 3;
  runtime::CancelSource cancel;
  std::vector<util::aligned_vector<float>> as(kRequests), bs(kRequests);
  std::vector<std::future<runtime::Status>> futs;
  for (std::uint64_t r = 0; r < kRequests; ++r) {
    as[r] = test::iota_data<float>(n);
    bs[r].resize(n);
    runtime::Executor::SubmitOptions opts;
    if (r == kVictim) opts.cancel = cancel.token();
    if (r == kRequests - 2) {
      // Cancel the victim while it sits gathered in the group: the
      // token is only consulted again at batch dequeue.
      cancel.request_cancel();
    }
    auto submitted = executor.try_submit<float>(h, std::span<const float>(as[r].data(), n),
                                                std::span<float>(bs[r].data(), n), opts);
    ASSERT_TRUE(submitted.ok()) << submitted.status().to_string();
    futs.push_back(std::move(submitted).value());
  }
  for (std::uint64_t r = 0; r < kRequests; ++r) {
    const runtime::Status st = futs[r].get();
    if (r == kVictim) {
      EXPECT_EQ(st.code(), runtime::StatusCode::kCancelled) << st.to_string();
    } else {
      EXPECT_TRUE(st.is_ok()) << "request " << r << ": " << st.to_string();
      for (std::uint64_t i = 0; i < n; i += 997) ASSERT_EQ(bs[r][p(i)], as[r][i]);
    }
  }
  executor.wait_idle();
  EXPECT_GE(metrics.snapshot().cancelled, 1u);
}

TEST(ExecutorBatching, DeadlineExpiredWhileGatheredResolvesPerRequest) {
  const std::uint64_t n = 1 << 12;
  const MachineParams mp = MachineParams::gtx680();
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  runtime::Executor executor(util::ThreadPool::global(), &metrics,
                             batched_config(8, std::chrono::seconds(2)));
  const perm::Permutation p = perm::bit_reversal(n);
  auto h = cache.acquire<float>(p, mp, core::Strategy::kScheduled);

  constexpr std::uint64_t kRequests = 8;
  constexpr std::uint64_t kVictim = 0;
  std::vector<util::aligned_vector<float>> as(kRequests), bs(kRequests);
  std::vector<std::future<runtime::Status>> futs;
  for (std::uint64_t r = 0; r < kRequests; ++r) {
    as[r] = test::iota_data<float>(n);
    bs[r].resize(n);
    runtime::Executor::SubmitOptions opts;
    if (r == kVictim) {
      opts.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
    }
    auto submitted = executor.try_submit<float>(h, std::span<const float>(as[r].data(), n),
                                                std::span<float>(bs[r].data(), n), opts);
    ASSERT_TRUE(submitted.ok()) << submitted.status().to_string();
    futs.push_back(std::move(submitted).value());
    if (r == kVictim) {
      // Let the victim's deadline lapse inside the gather window.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  for (std::uint64_t r = 0; r < kRequests; ++r) {
    const runtime::Status st = futs[r].get();
    if (r == kVictim) {
      EXPECT_EQ(st.code(), runtime::StatusCode::kDeadlineExceeded) << st.to_string();
    } else {
      EXPECT_TRUE(st.is_ok()) << "request " << r << ": " << st.to_string();
    }
  }
  executor.wait_idle();
  EXPECT_GE(metrics.snapshot().deadline_exceeded, 1u);
}

TEST(ExecutorBatching, ConventionalStrategyBypassesGathering) {
  const std::uint64_t n = 1 << 12;
  const MachineParams mp = MachineParams::gtx680();
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  runtime::Executor executor(util::ThreadPool::global(), &metrics, batched_config(8));
  auto h = cache.acquire<float>(perm::bit_reversal(n), mp, core::Strategy::kSDesignated);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);
  for (int r = 0; r < 4; ++r) {
    auto submitted = executor.try_submit<float>(h, std::span<const float>(a.data(), n),
                                                std::span<float>(b.data(), n));
    ASSERT_TRUE(submitted.ok());
    ASSERT_TRUE(std::move(submitted).value().get().is_ok());
  }
  executor.wait_idle();
  EXPECT_EQ(metrics.snapshot().batches_executed, 0u);
}

TEST(ExecutorBatching, CacheBudgetSkipsGatheringForOversizeRequests) {
  // Lane working set (a + b + scratch) above cache_budget_bytes /
  // kMinFusedLanes: the request must take the unbatched path — fused
  // sweeps that overflow the cache run slower than sequential ones.
  const std::uint64_t n = 1 << 12;
  const MachineParams mp = MachineParams::gtx680();
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  runtime::Executor::Config config = batched_config(8);
  config.batch.cache_budget_bytes = 3 * n * sizeof(float);  // exactly one lane
  runtime::Executor executor(util::ThreadPool::global(), &metrics, config);
  auto h = cache.acquire<float>(perm::bit_reversal(n), mp, core::Strategy::kScheduled);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);
  auto submitted = executor.try_submit<float>(h, std::span<const float>(a.data(), n),
                                              std::span<float>(b.data(), n));
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(std::move(submitted).value().get().is_ok());
  executor.wait_idle();
  EXPECT_EQ(metrics.snapshot().batches_executed, 0u);
}

// --------------------------------------------------- pooled executor scratch

TEST(ExecutorPool, SteadyStateScratchIsZeroAllocation) {
  // The zero-allocation acceptance check: after warmup, 100 requests
  // must not miss the buffer pool once — every scratch acquire is a
  // free-list hit, i.e. the request path performs no heap allocation.
  const std::uint64_t n = 1 << 12;
  util::BufferPool pool;
  runtime::PlanCache cache;
  runtime::Executor::Config config;
  config.pool = &pool;
  runtime::Executor executor(util::ThreadPool::global(), nullptr, config);
  auto h = cache.acquire<float>(perm::bit_reversal(n), MachineParams::gtx680(),
                                core::Strategy::kScheduled);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);
  const auto one = [&] {
    auto submitted = executor.try_submit<float>(h, std::span<const float>(a.data(), n),
                                                std::span<float>(b.data(), n));
    ASSERT_TRUE(submitted.ok());
    ASSERT_TRUE(std::move(submitted).value().get().is_ok());
  };
  for (int r = 0; r < 4; ++r) one();  // warmup: populates the size class
  const std::uint64_t misses_before = pool.stats().misses;
  for (int r = 0; r < 100; ++r) one();
  EXPECT_EQ(pool.stats().misses, misses_before);
  EXPECT_GE(pool.stats().hits, 100u);
}

TEST(ExecutorPool, PoolCapResolvesResourceExhausted) {
  const std::uint64_t n = 1 << 12;
  util::BufferPool::Config pool_config;
  pool_config.max_outstanding_bytes = 64;  // below any scratch class
  util::BufferPool pool(pool_config);
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  runtime::Executor::Config config;
  config.pool = &pool;
  runtime::Executor executor(util::ThreadPool::global(), &metrics, config);
  auto h = cache.acquire<float>(perm::bit_reversal(n), MachineParams::gtx680(),
                                core::Strategy::kScheduled);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);
  auto submitted = executor.try_submit<float>(h, std::span<const float>(a.data(), n),
                                              std::span<float>(b.data(), n));
  ASSERT_TRUE(submitted.ok());
  const runtime::Status st = std::move(submitted).value().get();
  EXPECT_EQ(st.code(), runtime::StatusCode::kResourceExhausted) << st.to_string();
  EXPECT_GE(pool.stats().acquire_failures, 1u);
  executor.wait_idle();
}

TEST(ExecutorPool, PoolExhaustedFaultSiteInjects) {
  const std::uint64_t n = 1 << 12;
  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
  runtime::Executor executor(util::ThreadPool::global(), &metrics);
  auto h = cache.acquire<float>(perm::bit_reversal(n), MachineParams::gtx680(),
                                core::Strategy::kScheduled);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);
  runtime::ScopedFaultInjection chaos(
      {.seed = 9, .rate = 1.0, .sites = std::string(runtime::fault_sites::kPoolExhausted)});
  auto submitted = executor.try_submit<float>(h, std::span<const float>(a.data(), n),
                                              std::span<float>(b.data(), n));
  ASSERT_TRUE(submitted.ok());
  const runtime::Status st = std::move(submitted).value().get();
  EXPECT_EQ(st.code(), runtime::StatusCode::kResourceExhausted) << st.to_string();
  executor.wait_idle();
}

}  // namespace
}  // namespace hmm
