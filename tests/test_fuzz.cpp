/// Randomized cross-validation: random machine shapes x random sizes x
/// random permutations, asserting the full invariant chain on each
/// draw — executor agreement, zero casual rounds, exact closed-form
/// times, plan validation, serialization stability.

#include <gtest/gtest.h>

#include <sstream>

#include "core/conventional.hpp"
#include "core/plan.hpp"
#include "core/plan_io.hpp"
#include "core/scheduled.hpp"
#include "exec/paper_kernels.hpp"
#include "model/cost.hpp"
#include "perm/distribution.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"

namespace hmm {
namespace {

using model::MachineParams;

struct Draw {
  MachineParams machine;
  std::uint64_t n;
  perm::Permutation p;
};

Draw draw_case(std::uint64_t seed) {
  util::Xoshiro256 rng(seed * 2654435761 + 17);
  MachineParams mp;
  const std::uint32_t widths[] = {4, 8, 16, 32};
  mp.width = widths[rng.bounded(4)];
  mp.latency = static_cast<std::uint32_t>(1 + rng.bounded(400));
  mp.dmms = 1u << rng.bounded(4);
  mp.shared_bytes = 1 << 20;  // ample; capacity gating tested elsewhere

  // n between 2*w^2 and 2^14, power of two.
  const unsigned min_bits = 2 * util::log2_exact(mp.width) + 1;
  const unsigned bits = min_bits + static_cast<unsigned>(rng.bounded(15 - min_bits));
  const std::uint64_t n = 1ull << bits;
  return Draw{mp, n, perm::random(n, rng)};
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, FullInvariantChain) {
  const Draw d = draw_case(GetParam());
  const auto& mp = d.machine;
  SCOPED_TRACE("w=" + std::to_string(mp.width) + " l=" + std::to_string(mp.latency) +
               " d=" + std::to_string(mp.dmms) + " n=" + std::to_string(d.n));

  // 1. Plan builds and validates.
  const core::ScheduledPlan plan = core::ScheduledPlan::build(d.p, mp);
  ASSERT_TRUE(plan.validate(d.p));

  // 2. Every executor produces the reference result.
  const auto a = test::iota_data<float>(d.n);
  util::aligned_vector<float> expected(d.n);
  d.p.apply<float>(a, expected);

  util::ThreadPool pool(2);
  util::aligned_vector<float> b(d.n), s1(d.n), s2(d.n);
  core::scheduled_cpu<float>(pool, plan, a, b, s1, s2);
  ASSERT_EQ(b, expected);

  std::fill(b.begin(), b.end(), -1.f);
  core::scheduled_cpu_direct<float>(pool, plan, a, b, s1, s2);
  ASSERT_EQ(b, expected);

  // 3. Simulator: zero casual rounds, exact Theorem 9 time when the
  //    block counts divide evenly across DMMs (guaranteed: rows,
  //    tiles, and dmms are all powers of two with rows >= dmms... rows
  //    may be < dmms for small n and large d; then the sim time is
  //    <= the formula, never more).
  sim::HmmSim sim(mp);
  const std::uint64_t t = core::scheduled_sim_rounds(sim, plan);
  ASSERT_TRUE(sim.stats().declarations_hold());
  ASSERT_EQ(sim.stats().observed_counts(), model::rounds::scheduled);
  // The 16 global rounds always cost exactly 16 coalesced rounds; the
  // shared rounds match the closed form when blocks spread evenly over
  // the DMMs (the formula's idealization).
  const std::uint64_t global_exact = 16 * model::coalesced_round_time(d.n, mp);
  ASSERT_GE(t, global_exact);
  if (plan.shape().rows % mp.dmms == 0 &&
      ((plan.shape().rows / mp.width) * (plan.shape().cols / mp.width)) % mp.dmms == 0) {
    ASSERT_EQ(t, model::scheduled_time(d.n, mp));
  }

  // 4. Conventional times equal Lemma 4 exactly.
  sim::HmmSim conv(mp);
  ASSERT_EQ(core::d_designated_sim_rounds(conv, d.p),
            model::d_designated_time(d.n, perm::distribution(d.p, mp.width), mp));

  // 5. exec-layer kernels agree with the hand-rolled rounds.
  exec::Machine m(mp);
  auto ga = m.alloc_global<float>(std::span<const float>{a.data(), d.n});
  auto gb = m.alloc_global<float>(d.n);
  const std::uint64_t t_exec = exec::scheduled_exec<float>(m, ga, gb, plan);
  ASSERT_EQ(t_exec, t);
  util::aligned_vector<float> out(d.n);
  m.read_back(gb, std::span<float>{out.data(), d.n});
  ASSERT_EQ(out, expected);

  // 6. Serialization round-trip preserves behaviour.
  std::stringstream ss;
  ASSERT_TRUE(core::save_plan(ss, plan));
  const auto reloaded = core::load_plan(ss);
  ASSERT_TRUE(reloaded.has_value());
  ASSERT_TRUE(reloaded->validate(d.p));
}

INSTANTIATE_TEST_SUITE_P(Draws, Fuzz, ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace hmm
