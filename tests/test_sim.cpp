#include <gtest/gtest.h>

#include <vector>

#include "model/cost.hpp"
#include "sim/hmm_sim.hpp"
#include "sim/pipeline.hpp"

namespace hmm::sim {
namespace {

using model::AccessClass;
using model::Dir;
using model::MachineParams;
using model::Space;

TEST(Pipeline, PackDmmFig3) {
  // Fig. 3, w=4, warp w0 accesses 7,5,15,0: banks 3,1,3,0 -> 2 stages;
  // the two bank-3 requests (7 and 15) land in different stages.
  std::vector<std::uint64_t> warp = {7, 5, 15, 0};
  const WarpTrace t = pack_dmm(warp, 4);
  ASSERT_EQ(t.stages.size(), 2u);
  EXPECT_EQ(t.stages[0].requests.size(), 3u);  // 7, 5, 0
  EXPECT_EQ(t.stages[1].requests.size(), 1u);  // 15
  EXPECT_EQ(t.stages[1].requests[0].addr, 15u);
}

TEST(Pipeline, PackUmmFig3) {
  // Fig. 3, w=4, warp w0 accesses 7,5,15,0: groups 1,1,3,0 -> 3 stages.
  std::vector<std::uint64_t> warp = {7, 5, 15, 0};
  const WarpTrace t = pack_umm(warp, 4);
  ASSERT_EQ(t.stages.size(), 3u);
  // First-touch order: group 1 (addrs 7,5), group 3 (15), group 0 (0).
  EXPECT_EQ(t.stages[0].requests.size(), 2u);
  EXPECT_EQ(t.stages[1].requests[0].addr, 15u);
  EXPECT_EQ(t.stages[2].requests[0].addr, 0u);
}

TEST(Pipeline, RoundStagesSumsWarps) {
  // Two warps on the UMM: {7,5,15,0} -> 3 stages, {10,11,12,15} -> 2.
  std::vector<std::uint64_t> addrs = {7, 5, 15, 0, 10, 11, 12, 15};
  EXPECT_EQ(round_stages(addrs, 4, Space::kGlobal), 5u);
  // DMM: {7,5,15,0} -> 2 stages, {10,11,12,15} -> 2 (bank 3 conflict).
  EXPECT_EQ(round_stages(addrs, 4, Space::kShared), 4u);
}

TEST(Pipeline, RoundTimePipelines) {
  // S stages complete at S + l - 1 (Fig. 3's accounting).
  EXPECT_EQ(round_time(5, 10), 14u);
  EXPECT_EQ(round_time(1, 10), 10u);
  EXPECT_EQ(round_time(0, 10), 0u);  // idle round costs nothing
}

TEST(HmmSim, AllocGroupAligned) {
  HmmSim sim(MachineParams::tiny(4, 5, 2));
  EXPECT_EQ(sim.alloc_global(3) % 4, 0u);
  EXPECT_EQ(sim.alloc_global(5) % 4, 0u);
  EXPECT_EQ(sim.alloc_global(1) % 4, 0u);
}

TEST(HmmSim, CoalescedGlobalRoundMatchesLemma1) {
  const MachineParams p = MachineParams::tiny(4, 7, 2);
  HmmSim sim(p);
  const std::uint64_t n = 64;
  std::vector<std::uint64_t> addrs(n);
  for (std::uint64_t i = 0; i < n; ++i) addrs[i] = i;
  const std::uint64_t t =
      sim.global_round("r", addrs, Dir::kRead, AccessClass::kCoalesced);
  EXPECT_EQ(t, model::coalesced_round_time(n, p));
  EXPECT_EQ(sim.stats().rounds[0].observed, AccessClass::kCoalesced);
}

TEST(HmmSim, CasualGlobalRoundCostsDistribution) {
  const MachineParams p = MachineParams::tiny(4, 7, 2);
  HmmSim sim(p);
  // Every thread of every warp hits its own group: stages = n.
  const std::uint64_t n = 16;
  std::vector<std::uint64_t> addrs(n);
  for (std::uint64_t i = 0; i < n; ++i) addrs[i] = i * 4;
  const std::uint64_t t = sim.global_round("w", addrs, Dir::kWrite, AccessClass::kCasual);
  EXPECT_EQ(t, model::casual_round_time(n, p));
  EXPECT_EQ(sim.stats().rounds[0].observed, AccessClass::kCasual);
}

TEST(HmmSim, SharedRoundConcurrentDmms) {
  const MachineParams p = MachineParams::tiny(4, 7, 2);
  HmmSim sim(p);
  // 4 blocks of 8 threads (2 warps each), all conflict-free:
  // per block 2 stages; 2 DMMs x 2 blocks -> 4 stages on each DMM.
  const std::uint64_t n = 32;
  std::vector<std::uint64_t> addrs(n);
  for (std::uint64_t i = 0; i < n; ++i) addrs[i] = i % 8;
  const std::uint64_t t =
      sim.shared_round("s", addrs, 8, Dir::kWrite, AccessClass::kConflictFree);
  EXPECT_EQ(t, 4u);
  EXPECT_EQ(t, model::conflict_free_round_time(n, p));
}

TEST(HmmSim, SharedLatencyParameterL) {
  // The paper's footnote: shared latency L (default 1). A conflict-free
  // round of S stages completes at S + L - 1.
  MachineParams p = MachineParams::tiny(4, 7, 2);
  p.shared_latency = 5;
  HmmSim sim(p);
  std::vector<std::uint64_t> addrs(16);
  for (std::uint64_t i = 0; i < 16; ++i) addrs[i] = i % 8;
  // 2 blocks of 8 (2 warps each) over 2 DMMs: 2 stages per DMM.
  const std::uint64_t t =
      sim.shared_round("s", addrs, 8, Dir::kRead, AccessClass::kConflictFree);
  EXPECT_EQ(t, 2u + 5 - 1);
  EXPECT_EQ(t, model::conflict_free_round_time(16, p));
}

TEST(HmmSim, SharedBankConflictDetected) {
  HmmSim sim(MachineParams::tiny(4, 7, 2));
  std::vector<std::uint64_t> addrs = {0, 4, 8, 12};  // all bank 0
  sim.shared_round("s", addrs, 4, Dir::kRead, AccessClass::kConflictFree);
  EXPECT_EQ(sim.stats().rounds[0].observed, AccessClass::kCasual);
  EXPECT_FALSE(sim.stats().declarations_hold());
}

TEST(HmmSim, DeclarationViolationFlagged) {
  HmmSim sim(MachineParams::tiny(4, 7, 2));
  std::vector<std::uint64_t> addrs = {0, 4, 8, 12};  // four groups
  sim.global_round("bad", addrs, Dir::kRead, AccessClass::kCoalesced);
  EXPECT_FALSE(sim.stats().declarations_hold());
}

TEST(HmmSim, HonestCasualDeclarationHolds) {
  HmmSim sim(MachineParams::tiny(4, 7, 2));
  std::vector<std::uint64_t> addrs = {0, 4, 8, 12};
  sim.global_round("ok", addrs, Dir::kRead, AccessClass::kCasual);
  EXPECT_TRUE(sim.stats().declarations_hold());
}

TEST(HmmSim, TotalTimeAccumulates) {
  const MachineParams p = MachineParams::tiny(4, 5, 2);
  HmmSim sim(p);
  std::vector<std::uint64_t> addrs = {0, 1, 2, 3};
  sim.global_round("r1", addrs, Dir::kRead, AccessClass::kCoalesced);
  sim.global_round("r2", addrs, Dir::kRead, AccessClass::kCoalesced);
  EXPECT_EQ(sim.now(), 2 * model::coalesced_round_time(4, p));
  sim.reset();
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.stats().rounds.empty());
}

TEST(HmmSim, IdleThreadsSkipped) {
  const MachineParams p = MachineParams::tiny(4, 5, 2);
  HmmSim sim(p);
  std::vector<std::uint64_t> addrs = {0, 1, model::kNoAccess, model::kNoAccess,
                                      model::kNoAccess, model::kNoAccess,
                                      model::kNoAccess, model::kNoAccess};
  // Second warp fully idle: only 1 stage.
  const std::uint64_t t = sim.global_round("r", addrs, Dir::kRead, AccessClass::kCoalesced);
  EXPECT_EQ(t, 1 + p.latency - 1);
}

TEST(HmmSim, ObservedCountsClassify) {
  const MachineParams p = MachineParams::tiny(4, 5, 2);
  HmmSim sim(p);
  std::vector<std::uint64_t> coal = {0, 1, 2, 3};
  std::vector<std::uint64_t> scat = {0, 4, 8, 12};
  sim.global_round("a", coal, Dir::kRead, AccessClass::kCoalesced);
  sim.global_round("b", scat, Dir::kWrite, AccessClass::kCasual);
  sim.shared_round("c", coal, 4, Dir::kRead, AccessClass::kConflictFree);
  const auto counts = sim.stats().observed_counts();
  EXPECT_EQ(counts.coalesced_read, 1u);
  EXPECT_EQ(counts.casual_write_global, 1u);
  EXPECT_EQ(counts.conflict_free_read, 1u);
  EXPECT_EQ(counts.total_rounds(), 3u);
}

TEST(HmmSim, L2ModelShrinksSmallCasualRounds) {
  MachineParams p = MachineParams::tiny(4, 100, 2);
  HmmSim nocache(p);
  HmmSim cached(p);
  L2Model l2;
  l2.enabled = true;
  l2.capacity_bytes = 1 << 20;
  l2.element_bytes = 4;
  l2.hit_speedup = 4;
  cached.set_l2(l2);

  // 8 warps all scattering over the same 8 groups: heavy re-touching.
  const std::uint64_t n = 32;
  std::vector<std::uint64_t> addrs(n);
  for (std::uint64_t i = 0; i < n; ++i) addrs[i] = (i % 8) * 4;
  const std::uint64_t t_miss = nocache.global_round("w", addrs, Dir::kWrite, AccessClass::kCasual);
  const std::uint64_t t_hit = cached.global_round("w", addrs, Dir::kWrite, AccessClass::kCasual);
  EXPECT_LT(t_hit, t_miss);
}

TEST(HmmSim, L2ModelNoEffectWhenFootprintTooLarge) {
  MachineParams p = MachineParams::tiny(4, 100, 2);
  HmmSim cached(p);
  L2Model l2;
  l2.enabled = true;
  l2.capacity_bytes = 16;  // tiny cache
  l2.element_bytes = 4;
  cached.set_l2(l2);
  HmmSim nocache(p);

  std::vector<std::uint64_t> addrs(32);
  for (std::uint64_t i = 0; i < 32; ++i) addrs[i] = (i % 8) * 4;
  EXPECT_EQ(cached.global_round("w", addrs, Dir::kWrite, AccessClass::kCasual),
            nocache.global_round("w", addrs, Dir::kWrite, AccessClass::kCasual));
}

}  // namespace
}  // namespace hmm::sim
