#include <gtest/gtest.h>

#include "core/conventional.hpp"
#include "core/scheduled.hpp"
#include "exec/paper_kernels.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"

namespace hmm::exec {
namespace {

using model::AccessClass;
using model::MachineParams;

TEST(ExecMachine, AllocAndReadBack) {
  Machine m(MachineParams::tiny(4, 5, 2));
  const auto host = test::iota_data<float>(64);
  auto arr = m.alloc_global<float>(std::span<const float>{host.data(), host.size()});
  EXPECT_EQ(arr.size, 64u);
  EXPECT_EQ(arr.base % 4, 0u);  // group aligned
  util::aligned_vector<float> out(64);
  m.read_back(arr, std::span<float>{out.data(), out.size()});
  EXPECT_EQ(out, host);
}

TEST(ExecMachine, SimpleCopyKernel) {
  Machine m(MachineParams::tiny(4, 9, 2));
  const auto host = test::iota_data<std::uint32_t>(128);
  auto a = m.alloc_global<std::uint32_t>(std::span<const std::uint32_t>{host.data(), 128});
  auto b = m.alloc_global<std::uint32_t>(128);

  struct Regs {
    std::uint32_t v = 0;
  };
  Kernel<Regs> k("copy");
  auto gid = [](const ThreadCtx& ctx, const Regs&) { return ctx.global_id(); };
  k.read_global<std::uint32_t>(a, gid, [](Regs& r, std::uint32_t v) { r.v = v; })
      .write_global<std::uint32_t>(
          b, gid, [](const ThreadCtx&, const Regs& r) { return r.v; });
  const std::uint64_t t = m.launch(LaunchConfig{4, 32}, k);

  EXPECT_EQ(t, 2 * model::coalesced_round_time(128, m.params()));
  util::aligned_vector<std::uint32_t> out(128);
  m.read_back(b, std::span<std::uint32_t>{out.data(), 128});
  EXPECT_EQ(out, host);
}

TEST(ExecMachine, SharedMemoryRoundTrip) {
  Machine m(MachineParams::tiny(4, 9, 2));
  const auto host = test::iota_data<float>(64);
  auto a = m.alloc_global<float>(std::span<const float>{host.data(), 64});
  auto b = m.alloc_global<float>(64);

  // Reverse each block of 8 through shared memory.
  struct Regs {
    float v = 0;
  };
  Kernel<Regs> k("block-reverse");
  auto s = k.shared_alloc<float>(8);
  k.read_global<float>(a, [](const ThreadCtx& c, const Regs&) { return c.global_id(); },
                       [](Regs& r, float v) { r.v = v; })
      .write_shared<float>(s, [](const ThreadCtx& c, const Regs&) { return 7 - c.thread; },
                           [](const ThreadCtx&, const Regs& r) { return r.v; },
                           AccessClass::kConflictFree)
      .read_shared<float>(s, [](const ThreadCtx& c, const Regs&) { return c.thread; },
                          [](Regs& r, float v) { r.v = v; })
      .write_global<float>(b, [](const ThreadCtx& c, const Regs&) { return c.global_id(); },
                           [](const ThreadCtx&, const Regs& r) { return r.v; });
  m.launch(LaunchConfig{8, 8}, k);

  util::aligned_vector<float> out(64);
  m.read_back(b, std::span<float>{out.data(), 64});
  for (std::uint64_t blk = 0; blk < 8; ++blk) {
    for (std::uint64_t j = 0; j < 8; ++j) {
      EXPECT_EQ(out[blk * 8 + j], host[blk * 8 + 7 - j]);
    }
  }
}

TEST(ExecMachine, ComputeStepIsFree) {
  Machine m(MachineParams::tiny(4, 9, 2));
  struct Regs {
    int x = 0;
  };
  Kernel<Regs> k("compute-only");
  k.compute([](const ThreadCtx&, Regs& r) { r.x = 42; });
  EXPECT_EQ(m.launch(LaunchConfig{2, 8}, k), 0u);
  EXPECT_EQ(m.sim().stats().rounds.size(), 0u);
}

TEST(ExecMachine, MultipleLaunchesAccumulateStats) {
  Machine m(MachineParams::tiny(4, 9, 2));
  auto a = m.alloc_global<float>(64);
  struct Regs {
    float v = 0;
  };
  Kernel<Regs> k("probe");
  k.read_global<float>(a, [](const ThreadCtx& c, const Regs&) { return c.global_id(); },
                       [](Regs& r, float v) { r.v = v; });
  const std::uint64_t t1 = m.launch(LaunchConfig{2, 32}, k);
  const std::uint64_t t2 = m.launch(LaunchConfig{2, 32}, k);
  EXPECT_EQ(t1, t2);  // same kernel, same cost
  EXPECT_EQ(m.sim().stats().rounds.size(), 2u);
  EXPECT_EQ(m.sim().now(), t1 + t2);
}

TEST(ExecMachine, RegistersResetPerLaunch) {
  // Regs are fresh per launch: a kernel relying on prior-launch state
  // would read default-initialized registers.
  Machine m(MachineParams::tiny(4, 9, 2));
  auto out = m.alloc_global<std::uint32_t>(32);
  struct Regs {
    std::uint32_t acc = 7;  // default marks a fresh register file
  };
  Kernel<Regs> k("acc");
  k.compute([](const ThreadCtx&, Regs& r) { r.acc += 1; })
      .write_global<std::uint32_t>(
          out, [](const ThreadCtx& c, const Regs&) { return c.global_id(); },
          [](const ThreadCtx&, const Regs& r) { return r.acc; });
  m.launch(LaunchConfig{1, 32}, k);
  m.launch(LaunchConfig{1, 32}, k);
  util::aligned_vector<std::uint32_t> host(32);
  m.read_back(out, std::span<std::uint32_t>{host.data(), 32});
  for (auto v : host) EXPECT_EQ(v, 8u);  // 7 + 1, never 9
}

TEST(ExecMachine, RejectsOversizedShared) {
  MachineParams mp = MachineParams::tiny(4, 9, 2);
  mp.shared_bytes = 256;
  Machine m(mp);
  struct Regs {};
  Kernel<Regs> k("too-big");
  k.shared_alloc<double>(1024);
  EXPECT_DEATH(m.launch(LaunchConfig{1, 8}, k), "shared");
}

TEST(ExecMachine, MixedSharedElementSizesRejected) {
  struct Regs {};
  Kernel<Regs> k("mixed");
  k.shared_alloc<float>(16);
  EXPECT_DEATH(k.shared_alloc<double>(16), "element size");
}

// --- paper kernels vs hand-rolled executors ---------------------------

TEST(PaperKernels, DDesignatedMatchesCore) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::bit_reversal(n);
  const auto host = test::iota_data<float>(n);

  Machine m(mp);
  auto a = m.alloc_global<float>(std::span<const float>{host.data(), n});
  auto b = m.alloc_global<float>(n);
  auto parr = m.alloc_global<std::uint32_t>(p.data());
  const std::uint64_t t_exec = d_designated_exec<float>(m, a, b, parr, 32);

  sim::HmmSim reference(mp);
  const std::uint64_t t_core = core::d_designated_sim_rounds(reference, p);
  EXPECT_EQ(t_exec, t_core);

  util::aligned_vector<float> out(n);
  m.read_back(b, std::span<float>{out.data(), n});
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(out[p(i)], host[i]);
}

TEST(PaperKernels, SDesignatedMatchesCore) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::by_name("random", n, 3);
  const perm::Permutation pinv = p.inverse();
  const auto host = test::iota_data<double>(n);

  Machine m(mp);
  auto a = m.alloc_global<double>(std::span<const double>{host.data(), n});
  auto b = m.alloc_global<double>(n);
  auto pinv_arr = m.alloc_global<std::uint32_t>(pinv.data());
  const std::uint64_t t_exec = s_designated_exec<double>(m, a, b, pinv_arr, 32);

  sim::HmmSim reference(mp);
  EXPECT_EQ(t_exec,
            core::s_designated_sim_rounds(reference, pinv, model::words_of<double>()));

  util::aligned_vector<double> out(n);
  m.read_back(b, std::span<double>{out.data(), n});
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(out[p(i)], host[i]);
}

TEST(PaperKernels, TransposeCorrectAndTimed) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t rows = 16, cols = 32;
  util::aligned_vector<float> host(rows * cols);
  for (std::uint64_t i = 0; i < host.size(); ++i) host[i] = static_cast<float>(i);

  Machine m(mp);
  auto a = m.alloc_global<float>(std::span<const float>{host.data(), host.size()});
  auto b = m.alloc_global<float>(rows * cols);
  const std::uint64_t t = transpose_exec<float>(m, a, b, rows, cols);
  EXPECT_EQ(t, model::transpose_time(rows * cols, mp));
  EXPECT_TRUE(m.sim().stats().declarations_hold());

  util::aligned_vector<float> out(rows * cols);
  m.read_back(b, std::span<float>{out.data(), out.size()});
  for (std::uint64_t i = 0; i < rows; ++i) {
    for (std::uint64_t j = 0; j < cols; ++j) {
      ASSERT_EQ(out[j * rows + i], host[i * cols + j]);
    }
  }
}

TEST(PaperKernels, ScheduledMatchesCoreExactly) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t n = 1024;
  for (const auto& name : {"bit-reversal", "random", "shuffle"}) {
    const perm::Permutation p = perm::by_name(name, n, 5);
    const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);
    const auto host = test::iota_data<float>(n);

    Machine m(mp);
    auto a = m.alloc_global<float>(std::span<const float>{host.data(), n});
    auto b = m.alloc_global<float>(n);
    const std::uint64_t t_exec = scheduled_exec<float>(m, a, b, plan);

    sim::HmmSim reference(mp);
    const std::uint64_t t_core = core::scheduled_sim_rounds(reference, plan);
    EXPECT_EQ(t_exec, t_core) << name;

    // Same round structure: 32 rounds, zero casual.
    const auto counts = m.sim().stats().observed_counts();
    EXPECT_EQ(counts, model::rounds::scheduled) << name;
    EXPECT_TRUE(m.sim().stats().declarations_hold()) << name;

    util::aligned_vector<float> out(n);
    m.read_back(b, std::span<float>{out.data(), n});
    for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(out[p(i)], host[i]) << name;
  }
}

/// Machine sweep: the exec-DSL scheduled kernels stay pinned to the
/// hand-rolled executors across machine shapes and permutation families.
class ExecSweep
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(ExecSweep, ScheduledPinnedToCore) {
  const auto [machine_idx, family] = GetParam();
  const MachineParams mp = test::machines()[machine_idx];
  const std::uint64_t n = 2ull * mp.width * mp.width * 4;
  const perm::Permutation p = perm::by_name(family, n, 3);
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);
  const auto host = test::iota_data<float>(n);

  Machine m(mp);
  auto a = m.alloc_global<float>(std::span<const float>{host.data(), n});
  auto b = m.alloc_global<float>(n);
  const std::uint64_t t_exec = scheduled_exec<float>(m, a, b, plan);

  sim::HmmSim reference(mp);
  EXPECT_EQ(t_exec, core::scheduled_sim_rounds(reference, plan));
  EXPECT_TRUE(m.sim().stats().declarations_hold());

  util::aligned_vector<float> out(n);
  m.read_back(b, std::span<float>{out.data(), n});
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(out[p(i)], host[i]);
}

INSTANTIATE_TEST_SUITE_P(Grid, ExecSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values("identical", "shuffle",
                                                              "random", "bit-reversal")));

TEST(PaperKernels, IdleThreadsViaNoAccess) {
  // A kernel where odd threads sit a round out: stages shrink accordingly.
  Machine m(MachineParams::tiny(4, 9, 2));
  auto a = m.alloc_global<float>(64);
  struct Regs {
    float v = 0;
  };
  Kernel<Regs> k("sparse");
  k.read_global<float>(
      a,
      [](const ThreadCtx& ctx, const Regs&) {
        return ctx.thread % 2 == 0 ? ctx.global_id() : model::kNoAccess;
      },
      [](Regs& r, float v) { r.v = v; }, AccessClass::kCasual, "sparse read");
  m.launch(LaunchConfig{2, 32}, k);
  // Each warp of 4 touches 2 even addresses spanning 1 group -> but the
  // thread-sparse pattern touches addresses {0,2} (group 0), {4,6}
  // (group 1)... one group per warp: still 16 warp-stages total.
  EXPECT_EQ(m.sim().stats().rounds[0].stages, 16u);
}

}  // namespace
}  // namespace hmm::exec
