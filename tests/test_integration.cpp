#include <gtest/gtest.h>

#include "core/conventional.hpp"
#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "perm/distribution.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"

namespace hmm::core {
namespace {

using model::MachineParams;

/// End-to-end: every executor on every backend produces exactly the
/// reference result, across machines, sizes, and permutation families.
struct Case {
  int machine;
  std::uint64_t n;
  std::string family;
};

class EndToEnd : public ::testing::TestWithParam<Case> {};

TEST_P(EndToEnd, AllExecutorsAgree) {
  const auto& c = GetParam();
  const MachineParams mp = test::machines()[c.machine];
  if (c.n < 2ull * mp.width * mp.width) GTEST_SKIP() << "too small for this machine";

  const perm::Permutation p = perm::by_name(c.family, c.n, c.n * 7 + c.machine);
  const auto a = test::iota_data<float>(c.n);
  util::aligned_vector<float> expected(c.n);
  p.apply<float>(a, expected);

  util::ThreadPool pool(2);

  {
    util::aligned_vector<float> b(c.n, -1.f);
    d_designated_cpu<float>(pool, a, b, p);
    EXPECT_EQ(b, expected) << "d-designated cpu";
  }
  {
    util::aligned_vector<float> b(c.n, -1.f);
    s_designated_cpu<float>(pool, a, b, p.inverse());
    EXPECT_EQ(b, expected) << "s-designated cpu";
  }
  {
    const ScheduledPlan plan = ScheduledPlan::build(p, mp);
    util::aligned_vector<float> b(c.n, -1.f), s1(c.n), s2(c.n);
    scheduled_cpu<float>(pool, plan, a, b, s1, s2);
    EXPECT_EQ(b, expected) << "scheduled cpu";

    sim::HmmSim sim(mp);
    util::aligned_vector<float> b2(c.n, -1.f);
    scheduled_sim<float>(sim, plan, a, b2);
    EXPECT_EQ(b2, expected) << "scheduled sim";
    EXPECT_TRUE(sim.stats().declarations_hold());
  }
}

std::vector<Case> end_to_end_cases() {
  std::vector<Case> cases;
  for (int machine = 0; machine < 3; ++machine) {
    for (std::uint64_t n : {1ull << 8, 1ull << 11, 1ull << 12, 1ull << 14}) {
      for (const auto& family : test::families_for(n)) {
        cases.push_back({machine, n, family});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, EndToEnd, ::testing::ValuesIn(end_to_end_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           std::string name = "m" + std::to_string(info.param.machine) + "_n" +
                                              std::to_string(info.param.n) + "_" +
                                              info.param.family;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

/// Property: for random permutations, scheduled simulated time is a
/// constant while conventional time tracks d_w(P) exactly (Table III's
/// min == max behaviour for scheduled).
TEST(Property, ScheduledTimeConstantAcrossRandomPerms) {
  const MachineParams mp = MachineParams::tiny(8, 17, 4);
  const std::uint64_t n = 1 << 12;
  std::uint64_t sched_time = 0;
  std::uint64_t conv_min = ~0ull, conv_max = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const perm::Permutation p = perm::by_name("random", n, seed);
    const ScheduledPlan plan = ScheduledPlan::build(p, mp);
    sim::HmmSim sim(mp);
    const std::uint64_t t = scheduled_sim_rounds(sim, plan);
    if (seed == 0) sched_time = t;
    EXPECT_EQ(t, sched_time) << "seed " << seed;

    sim::HmmSim sim2(mp);
    const std::uint64_t tc = d_designated_sim_rounds(sim2, p);
    conv_min = std::min(conv_min, tc);
    conv_max = std::max(conv_max, tc);
    EXPECT_EQ(tc, model::d_designated_time(n, perm::distribution(p, mp.width), mp));
  }
  // Conventional varies with the permutation (with overwhelming
  // probability across 8 random draws at this size).
  EXPECT_LE(conv_max - conv_min, n);  // sanity: variation bounded by d_w range
}

/// Property: composing plans — permuting by P then by Q equals
/// permuting by Q∘P (executors chain correctly through buffers).
TEST(Property, ExecutorsCompose) {
  const MachineParams mp = MachineParams::tiny(4, 5, 2);
  const std::uint64_t n = 1 << 10;
  const perm::Permutation p = perm::by_name("random", n, 10);
  const perm::Permutation q = perm::by_name("random", n, 11);
  util::ThreadPool pool(2);

  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> mid(n), out1(n), out2(n), s1(n), s2(n);

  const ScheduledPlan plan_p = ScheduledPlan::build(p, mp);
  const ScheduledPlan plan_q = ScheduledPlan::build(q, mp);
  scheduled_cpu<float>(pool, plan_p, a, mid, s1, s2);
  scheduled_cpu<float>(pool, plan_q, mid, out1, s1, s2);

  const perm::Permutation qp = q.compose(p);
  const ScheduledPlan plan_qp = ScheduledPlan::build(qp, mp);
  scheduled_cpu<float>(pool, plan_qp, a, out2, s1, s2);

  EXPECT_EQ(out1, out2);
}

/// Failure injection: a corrupted schedule must be caught by the
/// simulator's conflict detection (the invariant the König coloring
/// exists to maintain).
TEST(Property, CorruptedScheduleTriggersBankConflict) {
  const MachineParams mp = MachineParams::tiny(4, 5, 2);
  const std::uint64_t n = 256;
  const perm::Permutation p = perm::bit_reversal(n);
  ScheduledPlan plan = ScheduledPlan::build(p, mp);
  ASSERT_TRUE(plan.validate(p));

  // Swap two slots of pass-1 row 0 across warps so two same-bank reads
  // land in one warp. Rebuild a broken copy via const_cast-free path:
  // copy the schedule arrays, patch, and replay through the simulator.
  auto broken = plan;
  auto& phat = const_cast<util::aligned_vector<std::uint16_t>&>(broken.pass1().phat);
  auto& q = const_cast<util::aligned_vector<std::uint16_t>&>(broken.pass1().q);
  // Find two slots in different warps whose phat banks are equal.
  const std::uint32_t w = mp.width;
  bool swapped = false;
  for (std::uint64_t i = 0; i < w && !swapped; ++i) {
    for (std::uint64_t j = w; j < 2 * w && !swapped; ++j) {
      if ((phat[i] % w) == (phat[j] % w) && (phat[i] % w) != (phat[i ^ 1] % w)) {
        std::swap(phat[i ^ 1], phat[j]);
        std::swap(q[i ^ 1], q[j]);
        swapped = true;
      }
    }
  }
  ASSERT_TRUE(swapped);
  sim::HmmSim sim(mp);
  scheduled_sim_rounds(sim, broken);
  EXPECT_FALSE(sim.stats().declarations_hold());
}

}  // namespace
}  // namespace hmm::core
