#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"

namespace hmm::core {
namespace {

using model::MachineParams;

TEST(Layout, SquareShapes) {
  EXPECT_EQ(shape_for(16, 4), (MatrixShape{4, 4}));
  EXPECT_EQ(shape_for(1 << 20, 32), (MatrixShape{1 << 10, 1 << 10}));
}

TEST(Layout, RectangularShapes) {
  // Odd log2: cols = 2 * rows.
  EXPECT_EQ(shape_for(32, 4), (MatrixShape{4, 8}));
  EXPECT_EQ(shape_for(1 << 21, 32), (MatrixShape{1 << 10, 1 << 11}));
}

TEST(Layout, IndexHelpers) {
  const MatrixShape s{4, 8};
  EXPECT_EQ(s.size(), 32u);
  EXPECT_EQ(s.row_of(17), 2u);
  EXPECT_EQ(s.col_of(17), 1u);
}

TEST(Layout, SharedBytes) {
  // Two data buffers + two 16-bit schedule arrays per block.
  EXPECT_EQ(row_pass_shared_bytes(1024, 4), 2 * 1024 * 4 + 2 * 1024 * 2);
  EXPECT_EQ(transpose_shared_bytes(32, 8), 32 * 32 * 8);
}

TEST(Plan, BuildsForTinyMachine) {
  const MachineParams p = MachineParams::tiny(4, 5, 2);
  const perm::Permutation perm = perm::bit_reversal(64);
  const ScheduledPlan plan = ScheduledPlan::build(perm, p);
  EXPECT_EQ(plan.size(), 64u);
  EXPECT_EQ(plan.shape().rows, 8u);
  EXPECT_EQ(plan.shape().cols, 8u);
  EXPECT_EQ(plan.build_stats().colors, 8u);
  EXPECT_TRUE(plan.validate(perm));
}

TEST(Plan, ValidateRejectsWrongPermutation) {
  const MachineParams p = MachineParams::tiny(4, 5, 2);
  const perm::Permutation perm = perm::bit_reversal(64);
  const ScheduledPlan plan = ScheduledPlan::build(perm, p);
  EXPECT_FALSE(plan.validate(perm::shuffle(64)));
  EXPECT_FALSE(plan.validate(perm::identical(64)));
}

TEST(Plan, RectangularSize) {
  const MachineParams p = MachineParams::tiny(4, 5, 2);
  const perm::Permutation perm = perm::shuffle(128);  // 8 x 16
  const ScheduledPlan plan = ScheduledPlan::build(perm, p);
  EXPECT_EQ(plan.shape().rows, 8u);
  EXPECT_EQ(plan.shape().cols, 16u);
  EXPECT_TRUE(plan.validate(perm));
}

TEST(Plan, ScheduleBytesMatchPaperLayout) {
  // 3 passes x 2 arrays x n entries x 16-bit (the paper's short int 2-D
  // arrays).
  const MachineParams p = MachineParams::tiny(4, 5, 2);
  const ScheduledPlan plan = ScheduledPlan::build(perm::identical(256), p);
  EXPECT_EQ(plan.schedule_bytes(), 3 * 2 * 256 * sizeof(std::uint16_t));
}

TEST(Plan, SharedCapacityCheck) {
  MachineParams p = MachineParams::tiny(8, 5, 2);
  p.shared_bytes = 48 * 1024;
  const ScheduledPlan plan = ScheduledPlan::build(perm::identical(1 << 12), p);  // 64 x 64
  EXPECT_TRUE(plan.fits_shared(4));
  EXPECT_TRUE(plan.fits_shared(8));
  // A pathological shared limit smaller than one row fails.
  MachineParams tiny_shared = p;
  tiny_shared.shared_bytes = 256;
  const ScheduledPlan plan2 = ScheduledPlan::build(perm::identical(1 << 12), tiny_shared);
  EXPECT_FALSE(plan2.fits_shared(8));
}

TEST(Plan, AllFamiliesValidate) {
  const MachineParams p = MachineParams::tiny(4, 5, 2);
  const std::uint64_t n = 256;
  for (const auto& name : test::families_for(n)) {
    const perm::Permutation perm = perm::by_name(name, n);
    const ScheduledPlan plan = ScheduledPlan::build(perm, p);
    EXPECT_TRUE(plan.validate(perm)) << name;
  }
}

TEST(Plan, ParallelBuildBitIdenticalToSerial) {
  const MachineParams p = MachineParams::tiny(4, 5, 2);
  const perm::Permutation perm = perm::by_name("random", 1 << 12, 8);
  const ScheduledPlan serial = ScheduledPlan::build(perm, p);
  util::ThreadPool pool(3);
  const ScheduledPlan parallel = ScheduledPlan::build(pool, perm, p);
  EXPECT_EQ(parallel.pass1().phat, serial.pass1().phat);
  EXPECT_EQ(parallel.pass1().q, serial.pass1().q);
  EXPECT_EQ(parallel.pass2().phat, serial.pass2().phat);
  EXPECT_EQ(parallel.pass3().q, serial.pass3().q);
  EXPECT_TRUE(parallel.validate(perm));
}

TEST(Plan, MatchingPeelColoringAlsoWorks) {
  const MachineParams p = MachineParams::tiny(4, 5, 2);
  const perm::Permutation perm = perm::by_name("random", 256, 7);
  const ScheduledPlan plan =
      ScheduledPlan::build(perm, p, graph::ColoringAlgorithm::kMatchingPeel);
  EXPECT_TRUE(plan.validate(perm));
}

// Sweep: every machine x several sizes x random permutations.
class PlanSweep : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PlanSweep, RandomPermValidates) {
  const auto [machine_idx, n] = GetParam();
  const MachineParams p = test::machines()[machine_idx];
  if (n < static_cast<std::uint64_t>(p.width) * p.width * 2) GTEST_SKIP();
  const perm::Permutation perm = perm::by_name("random", n, n + machine_idx);
  const ScheduledPlan plan = ScheduledPlan::build(perm, p);
  EXPECT_TRUE(plan.validate(perm));
}

INSTANTIATE_TEST_SUITE_P(Grid, PlanSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1ull << 11, 1ull << 12,
                                                              1ull << 14, 1ull << 16)));

}  // namespace
}  // namespace hmm::core
