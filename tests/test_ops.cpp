#include <gtest/gtest.h>

#include <numeric>

#include "core/ops.hpp"
#include "model/cost.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace hmm::core {
namespace {

using model::MachineParams;

std::vector<std::uint16_t> random_perms(std::uint64_t rows, std::uint64_t cols,
                                        std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint16_t> g(rows * cols);
  for (std::uint64_t r = 0; r < rows; ++r) {
    auto* row = g.data() + r * cols;
    for (std::uint64_t j = 0; j < cols; ++j) row[j] = static_cast<std::uint16_t>(j);
    for (std::uint64_t j = cols - 1; j > 0; --j) {
      std::swap(row[j], row[rng.bounded(j + 1)]);
    }
  }
  return g;
}

TEST(OpsSim, RowWiseInventoryMatchesTable1) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const auto g = random_perms(8, 16, 1);
  const RowScheduleSet set = build_row_schedules(g, 8, 16, mp.width);
  sim::HmmSim sim(mp);
  const std::uint64_t t = row_wise_sim_rounds(sim, set);
  const auto counts = sim.stats().observed_counts();
  EXPECT_EQ(counts, model::rounds::row_wise);
  EXPECT_TRUE(sim.stats().declarations_hold());
  EXPECT_EQ(t, model::row_wise_time(8 * 16, mp));
}

TEST(OpsSim, TransposeInventoryMatchesTable1) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  sim::HmmSim sim(mp);
  const std::uint64_t t = transpose_sim_rounds(sim, 16, 32);
  const auto counts = sim.stats().observed_counts();
  EXPECT_EQ(counts, model::rounds::transpose);
  EXPECT_TRUE(sim.stats().declarations_hold());
  EXPECT_EQ(t, model::transpose_time(16 * 32, mp));
}

TEST(OpsSim, ColumnWiseInventoryMatchesTable1) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t rows = 16, cols = 8;
  // Column perms h_c over `rows` entries, laid out [c * rows + i].
  const auto h = random_perms(cols, rows, 2);
  const RowScheduleSet set = build_column_schedules(h, rows, cols, mp.width);
  sim::HmmSim sim(mp);
  const std::uint64_t t = column_wise_sim_rounds(sim, "colwise", set, rows, cols);
  const auto counts = sim.stats().observed_counts();
  EXPECT_EQ(counts, model::rounds::column_wise);
  EXPECT_TRUE(sim.stats().declarations_hold());
  EXPECT_EQ(t, model::column_wise_time(rows * cols, mp));
}

TEST(OpsCpu, ColumnWiseCorrect) {
  util::ThreadPool pool(2);
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t rows = 16, cols = 8;
  const auto h = random_perms(cols, rows, 3);
  const RowScheduleSet set = build_column_schedules(h, rows, cols, mp.width);

  const auto a = test::iota_data<float>(rows * cols);
  util::aligned_vector<float> out(rows * cols), scratch(rows * cols);
  column_wise_cpu<float>(pool, a, out, rows, cols, set, scratch, mp.width);

  // b[h_c(i)][c] == a[i][c].
  for (std::uint64_t c = 0; c < cols; ++c) {
    for (std::uint64_t i = 0; i < rows; ++i) {
      const std::uint64_t dest_row = h[c * rows + i];
      EXPECT_EQ(out[dest_row * cols + c], a[i * cols + c]) << "col " << c << " row " << i;
    }
  }
}

TEST(OpsCpu, ColumnWiseIdentity) {
  util::ThreadPool pool(1);
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t rows = 8, cols = 8;
  std::vector<std::uint16_t> h(rows * cols);
  for (std::uint64_t c = 0; c < cols; ++c) {
    for (std::uint64_t i = 0; i < rows; ++i) h[c * rows + i] = static_cast<std::uint16_t>(i);
  }
  const RowScheduleSet set = build_column_schedules(h, rows, cols, mp.width);
  const auto a = test::iota_data<double>(rows * cols);
  util::aligned_vector<double> out(rows * cols), scratch(rows * cols);
  column_wise_cpu<double>(pool, a, out, rows, cols, set, scratch, mp.width);
  EXPECT_EQ(out, a);
}

TEST(OpsSim, RowWiseTimeScalesWithRows) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const auto g8 = random_perms(8, 16, 4);
  const auto g16 = random_perms(16, 16, 4);
  sim::HmmSim sim8(mp), sim16(mp);
  const std::uint64_t t8 = row_wise_sim_rounds(sim8, build_row_schedules(g8, 8, 16, mp.width));
  const std::uint64_t t16 =
      row_wise_sim_rounds(sim16, build_row_schedules(g16, 16, 16, mp.width));
  EXPECT_EQ(t16 - t8, model::row_wise_time(256, mp) - model::row_wise_time(128, mp));
}

TEST(OpsSim, TransposeRectangularBothOrientations) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  sim::HmmSim sim(mp);
  const std::uint64_t t1 = transpose_sim_rounds(sim, 8, 32);
  const std::uint64_t t2 = transpose_sim_rounds(sim, 32, 8);
  EXPECT_EQ(t1, t2);  // same element count, same cost
  EXPECT_TRUE(sim.stats().declarations_hold());
}

TEST(OpsSim, CappedRowWiseMatchesClosedForm) {
  const MachineParams mp = MachineParams::tiny(4, 33, 2);
  const std::uint64_t rows = 8, cols = 32;
  const auto g = random_perms(rows, cols, 21);
  const RowScheduleSet set = build_row_schedules(g, rows, cols, mp.width);

  for (std::uint64_t cap : {8ull, 16ull, 32ull, 64ull}) {
    sim::HmmSim sim(mp);
    RowPassBases bases{.in = sim.alloc_global(rows * cols),
                       .out = sim.alloc_global(rows * cols),
                       .phat = sim.alloc_global(rows * cols),
                       .q = sim.alloc_global(rows * cols)};
    const std::uint64_t t =
        row_wise_sim_rounds_capped(sim, "capped", set, bases, 1, cap);
    EXPECT_EQ(t, model::row_wise_time_capped(rows, cols, mp, 1, cap)) << "cap " << cap;
    EXPECT_TRUE(sim.stats().declarations_hold()) << "cap " << cap;
  }
}

TEST(OpsSim, CapAboveRowLengthEqualsUncapped) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const auto g = random_perms(8, 16, 22);
  const RowScheduleSet set = build_row_schedules(g, 8, 16, mp.width);
  sim::HmmSim s1(mp), s2(mp);
  RowPassBases b1{.in = s1.alloc_global(128), .out = s1.alloc_global(128),
                  .phat = s1.alloc_global(128), .q = s1.alloc_global(128)};
  RowPassBases b2{.in = s2.alloc_global(128), .out = s2.alloc_global(128),
                  .phat = s2.alloc_global(128), .q = s2.alloc_global(128)};
  EXPECT_EQ(row_wise_sim_rounds_capped(s1, "c", set, b1, 1, 1024),
            row_wise_sim_rounds(s2, "u", set, b2, 1));
}

TEST(OpsSim, NaiveColumnWiseIsCasual) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const std::uint64_t rows = 16, cols = 16;
  const auto h = random_perms(cols, rows, 9);

  sim::HmmSim naive(mp);
  column_wise_naive_sim_rounds(naive, "naive", h, rows, cols);
  // Strided column walks: both rounds observed casual.
  for (const auto& r : naive.stats().rounds) {
    EXPECT_EQ(r.observed, model::AccessClass::kCasual) << r.label;
  }
  // Each warp of w threads walks one column stretch: stride `cols`
  // means w distinct groups per warp on the read -> n stages.
  EXPECT_EQ(naive.stats().rounds[0].stages, rows * cols);
}

TEST(OpsSim, TransposeDetourBeatsNaiveColumnWiseAtScale) {
  // The 16-round detour only pays on a wide machine at sizes where the
  // per-round latency amortizes (the same regime as Table II).
  const MachineParams mp = MachineParams::gtx680();
  const std::uint64_t rows = 256, cols = 256;
  const auto h = random_perms(cols, rows, 10);

  sim::HmmSim naive(mp);
  const std::uint64_t t_naive =
      column_wise_naive_sim_rounds(naive, "naive", h, rows, cols);
  const RowScheduleSet set = build_column_schedules(h, rows, cols, mp.width);
  sim::HmmSim via_t(mp);
  const std::uint64_t t_transpose =
      column_wise_sim_rounds(via_t, "colwise", set, rows, cols);
  EXPECT_LT(t_transpose, t_naive);
  EXPECT_TRUE(via_t.stats().declarations_hold());
}

TEST(OpsSim, TransposeRejectsNonMultipleOfWidth) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  sim::HmmSim sim(mp);
  EXPECT_DEATH(transpose_sim_rounds(sim, 6, 8), "multiples of the width");
}

}  // namespace
}  // namespace hmm::core
