#include <gtest/gtest.h>

#include "core/block_permute.hpp"
#include "model/cost.hpp"
#include "perm/distribution.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"

namespace hmm::core {
namespace {

using model::MachineParams;

std::vector<perm::Permutation> random_blocks(std::uint64_t blocks, std::uint64_t block_n,
                                             std::uint64_t seed) {
  std::vector<perm::Permutation> ps;
  util::Xoshiro256 rng(seed);
  for (std::uint64_t b = 0; b < blocks; ++b) ps.push_back(perm::random(block_n, rng));
  return ps;
}

TEST(BlockPermuter, AppliesEachBlockIndependently) {
  const std::uint64_t blocks = 8, bn = 64;
  const BlockPermuter bp(random_blocks(blocks, bn, 1), 8);
  util::ThreadPool pool(2);
  const auto a = test::iota_data<float>(blocks * bn);
  util::aligned_vector<float> out(blocks * bn);
  bp.apply<float>(pool, a, out);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    for (std::uint64_t k = 0; k < bn; ++k) {
      ASSERT_EQ(out[b * bn + bp.permutation(b)(k)], a[b * bn + k]) << b << "," << k;
    }
  }
}

TEST(BlockPermuter, MixedFamiliesPerBlock) {
  const std::uint64_t bn = 256;
  std::vector<perm::Permutation> ps;
  ps.push_back(perm::bit_reversal(bn));
  ps.push_back(perm::identical(bn));
  ps.push_back(perm::shuffle(bn));
  ps.push_back(perm::transpose_square(bn));
  const BlockPermuter bp(std::move(ps), 32);
  util::ThreadPool pool(1);
  const auto a = test::iota_data<std::uint32_t>(4 * bn);
  util::aligned_vector<std::uint32_t> out(4 * bn);
  bp.apply<std::uint32_t>(pool, a, out);
  for (std::uint64_t b = 0; b < 4; ++b) {
    for (std::uint64_t k = 0; k < bn; ++k) {
      ASSERT_EQ(out[b * bn + bp.permutation(b)(k)], a[b * bn + k]);
    }
  }
}

TEST(BlockPermuter, SimTimeMatchesFloorAndIsPermutationIndependent) {
  const MachineParams mp = MachineParams::tiny(8, 40, 2);
  const std::uint64_t blocks = 8, bn = 64;
  const BlockPermuter bp1(random_blocks(blocks, bn, 2), mp.width);
  const BlockPermuter bp2(random_blocks(blocks, bn, 99), mp.width);

  sim::HmmSim s1(mp), s2(mp);
  const std::uint64_t t1 = bp1.sim_rounds(s1);
  const std::uint64_t t2 = bp2.sim_rounds(s2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, bp1.predicted_time_units(mp));
  EXPECT_TRUE(s1.stats().declarations_hold());
  EXPECT_EQ(s1.stats().observed_counts().casual_read_global +
                s1.stats().observed_counts().casual_write_global,
            0u);
}

TEST(BlockPermuter, RejectsMixedSizes) {
  std::vector<perm::Permutation> ps;
  ps.push_back(perm::identical(64));
  ps.push_back(perm::identical(128));
  EXPECT_DEATH(BlockPermuter(std::move(ps), 8), "one size");
}

TEST(BlockPermuter, BatchBeatsIndividualScheduledRuns) {
  // A batch of k small permutations costs 6 rounds total; planning each
  // block as its own full scheduled permutation would cost 32 rounds
  // each. The batch API is the right tool below the plan threshold.
  const MachineParams mp = MachineParams::gtx680();
  const std::uint64_t blocks = 64, bn = 1024;
  const BlockPermuter bp(random_blocks(blocks, bn, 3), mp.width);
  sim::HmmSim sim(mp);
  const std::uint64_t t_batch = bp.sim_rounds(sim);
  // One conventional D-designated run over the same data would pay the
  // casual write: d_w ~ n for random blocks... but within a block of
  // 1024 the scatter stays inside 32 groups; still strictly worse:
  const std::uint64_t n = blocks * bn;
  EXPECT_LT(t_batch, model::d_designated_time(
                         n, perm::distribution(perm::by_name("random", n, 4), mp.width),
                         mp));
}

}  // namespace
}  // namespace hmm::core
