/// Tests for the serving-layer robustness stack: the Status/StatusOr
/// error taxonomy, cooperative cancellation, the deterministic fault
/// injector, request deadlines + admission control on the executor, and
/// the RobustPermuteService degradation ladder (including the chaos
/// acceptance scenario: 30% plan-build failures, zero incorrect
/// responses, zero aborts).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/permuter.hpp"
#include "core/plan_io.hpp"
#include "perm/generators.hpp"
#include "runtime/cancel.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/metrics.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/service.hpp"
#include "runtime/status.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"

namespace hmm {
namespace {

using namespace std::chrono_literals;
using runtime::Status;
using runtime::StatusCode;
using runtime::StatusOr;

// ------------------------------------------------------------------- status

TEST(Status, DefaultIsOkAndCarriesNoMessage) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
  EXPECT_EQ(s, Status::ok());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s(StatusCode::kDeadlineExceeded, "queued past the request deadline");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.to_string(), "DEADLINE_EXCEEDED: queued past the request deadline");
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_EQ(runtime::to_string(StatusCode::kOk), "OK");
  EXPECT_EQ(runtime::to_string(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(runtime::to_string(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_EQ(runtime::to_string(StatusCode::kPlanBuildFailed), "PLAN_BUILD_FAILED");
  EXPECT_EQ(runtime::to_string(StatusCode::kCancelled), "CANCELLED");
  EXPECT_EQ(runtime::to_string(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(Status, TransientTaxonomyDrivesRetryPolicy) {
  EXPECT_TRUE(runtime::is_transient(StatusCode::kPlanBuildFailed));
  EXPECT_TRUE(runtime::is_transient(StatusCode::kUnavailable));
  EXPECT_TRUE(runtime::is_transient(StatusCode::kResourceExhausted));
  EXPECT_FALSE(runtime::is_transient(StatusCode::kInvalidArgument));
  EXPECT_FALSE(runtime::is_transient(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(runtime::is_transient(StatusCode::kCancelled));
}

TEST(StatusOr, HoldsValueOrError) {
  StatusOr<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);

  StatusOr<int> bad(Status(StatusCode::kUnavailable, "nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnavailable);
}

TEST(StatusOr, WorksWithMoveOnlyAndNonDefaultConstructibleTypes) {
  struct NoDefault {
    explicit NoDefault(int x) : v(x) {}
    int v;
  };
  StatusOr<NoDefault> got(NoDefault(3));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().v, 3);

  StatusOr<std::unique_ptr<int>> moved(std::make_unique<int>(9));
  ASSERT_TRUE(moved.ok());
  std::unique_ptr<int> out = std::move(moved).value();
  EXPECT_EQ(*out, 9);
}

// ------------------------------------------------------------------- cancel

TEST(Cancel, DefaultTokenCanNeverFire) {
  runtime::CancelToken token;
  EXPECT_FALSE(token.can_be_cancelled());
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancel, SourceFiresEveryToken) {
  runtime::CancelSource source;
  runtime::CancelToken token = source.token();
  runtime::CancelToken copy = token;
  EXPECT_TRUE(token.can_be_cancelled());
  EXPECT_FALSE(token.cancelled());
  source.request_cancel();
  EXPECT_TRUE(source.cancel_requested());
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
  source.request_cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

// ------------------------------------------------------------- fault injector

TEST(FaultInjector, DisarmedChecksNeverFireOrCount) {
  auto& faults = runtime::FaultInjector::instance();
  faults.disarm();
  EXPECT_FALSE(faults.armed());
  EXPECT_FALSE(faults.should_fire("some.site"));
  EXPECT_EQ(faults.checks("some.site"), 0u);
  EXPECT_EQ(faults.total_fired(), 0u);
}

TEST(FaultInjector, RateZeroStaysDisarmedRateOneAlwaysFires) {
  {
    // A zero rate never arms: checks stay on the one-atomic-load fast
    // path and no counters accrue.
    runtime::ScopedFaultInjection chaos({.seed = 11, .rate = 0.0, .sites = {}});
    auto& faults = runtime::FaultInjector::instance();
    EXPECT_FALSE(faults.armed());
    for (int i = 0; i < 64; ++i) EXPECT_FALSE(faults.should_fire("site.a"));
    EXPECT_EQ(faults.checks("site.a"), 0u);
    EXPECT_EQ(faults.fired("site.a"), 0u);
  }
  {
    runtime::ScopedFaultInjection chaos({.seed = 11, .rate = 1.0, .sites = {}});
    auto& faults = runtime::FaultInjector::instance();
    for (int i = 0; i < 64; ++i) EXPECT_TRUE(faults.should_fire("site.a"));
    EXPECT_EQ(faults.fired("site.a"), 64u);
  }
}

TEST(FaultInjector, SameSeedReplaysTheSamePattern) {
  auto pattern = [](std::uint64_t seed) {
    runtime::ScopedFaultInjection chaos({.seed = seed, .rate = 0.5, .sites = {}});
    auto& faults = runtime::FaultInjector::instance();
    std::vector<bool> fired;
    for (int i = 0; i < 128; ++i) fired.push_back(faults.should_fire("site.x"));
    return fired;
  };
  const std::vector<bool> a = pattern(42);
  const std::vector<bool> b = pattern(42);
  const std::vector<bool> c = pattern(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed, different chaos (2^-128 flake odds)
  // Rate 0.5 should actually mix fires and non-fires.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(FaultInjector, SitesAreIndependentStreams) {
  runtime::ScopedFaultInjection chaos({.seed = 9, .rate = 0.5, .sites = {}});
  auto& faults = runtime::FaultInjector::instance();
  std::vector<bool> a, b;
  for (int i = 0; i < 128; ++i) a.push_back(faults.should_fire("site.a"));
  for (int i = 0; i < 128; ++i) b.push_back(faults.should_fire("site.b"));
  EXPECT_NE(a, b);  // site name is part of the decision hash
}

TEST(FaultInjector, SiteFilterScopesTheBlastRadius) {
  runtime::ScopedFaultInjection chaos({.seed = 5, .rate = 1.0, .sites = "only.this,and.that"});
  auto& faults = runtime::FaultInjector::instance();
  EXPECT_TRUE(faults.should_fire("only.this"));
  EXPECT_TRUE(faults.should_fire("and.that"));
  EXPECT_FALSE(faults.should_fire("something.else"));
  EXPECT_EQ(faults.fired("something.else"), 0u);
}

TEST(FaultInjector, MaybeThrowCarriesTheStatusCode) {
  runtime::ScopedFaultInjection chaos({.seed = 1, .rate = 1.0, .sites = {}});
  try {
    runtime::FaultInjector::instance().maybe_throw("site.t", StatusCode::kPlanBuildFailed,
                                                   "injected");
    FAIL() << "maybe_throw at rate 1.0 must throw";
  } catch (const runtime::FaultInjectedError& e) {
    EXPECT_EQ(e.code, StatusCode::kPlanBuildFailed);
    // Messages are tagged so an injected failure can never be mistaken
    // for a real one in logs.
    EXPECT_NE(std::string(e.what()).find("[fault-injected]"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
  }
}

// ------------------------------------------------------ executor: lifecycle

/// An executor over a single-thread pool whose worker is parked on a
/// gate: requests submitted behind the gate stay *queued*
/// deterministically until release() — the scaffolding for the
/// dequeue-time deadline/cancel tests.
struct BlockedExecutor {
  explicit BlockedExecutor(runtime::Executor::Config config = {})
      : pool(1), executor(pool, &metrics, config) {
    blocker = pool.submit_task([gate = release.get_future().share()] { gate.wait(); });
  }
  ~BlockedExecutor() {
    release_worker();
    blocker.wait();
  }
  void release_worker() {
    if (!released) {
      release.set_value();
      released = true;
    }
  }

  runtime::ServiceMetrics metrics;
  util::ThreadPool pool;
  runtime::Executor executor;
  std::promise<void> release;
  std::future<void> blocker;
  bool released = false;
};

std::shared_ptr<const core::OfflinePermuter<float>> make_permuter(std::uint64_t n) {
  return std::make_shared<const core::OfflinePermuter<float>>(perm::bit_reversal(n));
}

TEST(ExecutorRobust, CancelledWhileQueuedNeverExecutes) {
  BlockedExecutor ctx;
  const std::uint64_t n = 1024;
  auto h = make_permuter(n);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n, -1.0f);

  runtime::CancelSource cancel;
  auto submitted = ctx.executor.try_submit<float>(
      h, std::span<const float>(a.data(), n), std::span<float>(b.data(), n),
      {runtime::Executor::kNoDeadline, cancel.token()});
  ASSERT_TRUE(submitted.ok());
  cancel.request_cancel();  // request is still queued behind the blocker
  ctx.release_worker();

  const Status status = std::move(submitted).value().get();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  ctx.executor.wait_idle();
  // Never executed: output untouched, no execute sample recorded.
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(b[i], -1.0f) << "executed after cancel";
  const runtime::MetricsSnapshot snap = ctx.metrics.snapshot();
  EXPECT_EQ(snap.execute_count, 0u);
  EXPECT_EQ(snap.cancelled, 1u);
  EXPECT_EQ(ctx.executor.in_flight(), 0u);
}

TEST(ExecutorRobust, DeadlineExpiredInQueueRejectsWithoutExecuting) {
  BlockedExecutor ctx;
  const std::uint64_t n = 1024;
  auto h = make_permuter(n);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n, -1.0f);

  auto submitted = ctx.executor.try_submit<float>(
      h, std::span<const float>(a.data(), n), std::span<float>(b.data(), n),
      {std::chrono::steady_clock::now() + 20ms, runtime::CancelToken{}});
  ASSERT_TRUE(submitted.ok());
  std::this_thread::sleep_for(60ms);  // let the deadline pass while queued
  ctx.release_worker();

  const Status status = std::move(submitted).value().get();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  ctx.executor.wait_idle();
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(b[i], -1.0f) << "executed past deadline";
  const runtime::MetricsSnapshot snap = ctx.metrics.snapshot();
  EXPECT_EQ(snap.execute_count, 0u);
  EXPECT_EQ(snap.deadline_exceeded, 1u);
}

TEST(ExecutorRobust, PreExpiredDeadlineIsRefusedSynchronously) {
  runtime::ServiceMetrics metrics;
  runtime::Executor executor(util::ThreadPool::global(), &metrics);
  const std::uint64_t n = 1024;
  auto h = make_permuter(n);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);

  auto submitted = executor.try_submit<float>(
      h, std::span<const float>(a.data(), n), std::span<float>(b.data(), n),
      {std::chrono::steady_clock::now() - 1ms, runtime::CancelToken{}});
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kDeadlineExceeded);
  const runtime::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.submitted, 0u);  // refused before admission
  EXPECT_EQ(snap.execute_count, 0u);
  EXPECT_EQ(executor.in_flight(), 0u);
}

TEST(ExecutorRobust, InvalidRequestsAreRefusedTyped) {
  runtime::Executor executor(util::ThreadPool::global());
  const std::uint64_t n = 1024;
  auto h = make_permuter(n);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n / 2);  // wrong size

  auto wrong_size = executor.try_submit<float>(h, std::span<const float>(a.data(), n),
                                               std::span<float>(b.data(), b.size()));
  ASSERT_FALSE(wrong_size.ok());
  EXPECT_EQ(wrong_size.status().code(), StatusCode::kInvalidArgument);

  auto null_handle = executor.try_submit<float>(nullptr, std::span<const float>(a.data(), n),
                                                std::span<float>(b.data(), b.size()));
  ASSERT_FALSE(null_handle.ok());
  EXPECT_EQ(null_handle.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExecutorRobust, AdmissionRejectFailsFastAtTheBound) {
  BlockedExecutor ctx({.max_in_flight = 1, .admission = runtime::Executor::Admission::kReject});
  const std::uint64_t n = 1024;
  auto h = make_permuter(n);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b1(n), b2(n);

  auto first = ctx.executor.try_submit<float>(h, std::span<const float>(a.data(), n),
                                              std::span<float>(b1.data(), n));
  ASSERT_TRUE(first.ok());  // admitted, queued behind the blocker
  auto second = ctx.executor.try_submit<float>(h, std::span<const float>(a.data(), n),
                                               std::span<float>(b2.data(), n));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.metrics.snapshot().rejected, 1u);

  ctx.release_worker();
  EXPECT_TRUE(std::move(first).value().get().is_ok());
  ctx.executor.wait_idle();
  const perm::Permutation p = perm::bit_reversal(n);
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(b1[p(i)], a[i]);
}

TEST(ExecutorRobust, AdmissionBlockHonorsTheDeadline) {
  BlockedExecutor ctx({.max_in_flight = 1, .admission = runtime::Executor::Admission::kBlock});
  const std::uint64_t n = 1024;
  auto h = make_permuter(n);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b1(n), b2(n);

  auto first = ctx.executor.try_submit<float>(h, std::span<const float>(a.data(), n),
                                              std::span<float>(b1.data(), n));
  ASSERT_TRUE(first.ok());
  // The slot is held; blocking admission must give up at the deadline.
  auto second = ctx.executor.try_submit<float>(
      h, std::span<const float>(a.data(), n), std::span<float>(b2.data(), n),
      {std::chrono::steady_clock::now() + 50ms, runtime::CancelToken{}});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kDeadlineExceeded);

  ctx.release_worker();
  EXPECT_TRUE(std::move(first).value().get().is_ok());
  ctx.executor.wait_idle();
}

// --------------------------------------------------------------- service

struct ServiceFixture {
  explicit ServiceFixture(runtime::RobustPermuteService::Config config = {})
      : service(util::ThreadPool::global(), config) {}
  runtime::RobustPermuteService service;
};

TEST(RobustService, ValidatesRequestsBeforeTouchingTheLadder) {
  ServiceFixture fx;
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::bit_reversal(n);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);

  auto mismatched = fx.service.submit<float>(p, std::span<const float>(a.data(), n),
                                             std::span<float>(b.data(), n / 2));
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);

  util::aligned_vector<float> aliased = test::iota_data<float>(n);
  auto in_place = fx.service.submit<float>(p, std::span<const float>(aliased.data(), n),
                                           std::span<float>(aliased.data(), n));
  ASSERT_FALSE(in_place.ok());
  EXPECT_EQ(in_place.status().code(), StatusCode::kInvalidArgument);

  // Nothing was admitted or executed.
  EXPECT_EQ(fx.service.metrics().snapshot().submitted, 0u);
}

TEST(RobustService, ExpiredDeadlineIsRejectedWithoutExecuting) {
  ServiceFixture fx;
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::bit_reversal(n);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n, -1.0f);

  runtime::RequestOptions opts;
  opts.deadline = std::chrono::steady_clock::now() - 1ms;
  auto submitted =
      fx.service.submit<float>(p, std::span<const float>(a.data(), n),
                               std::span<float>(b.data(), n), opts);
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kDeadlineExceeded);
  const runtime::MetricsSnapshot snap = fx.service.metrics().snapshot();
  EXPECT_EQ(snap.submitted, 0u);
  EXPECT_EQ(snap.execute_count, 0u);
  EXPECT_GE(snap.deadline_exceeded, 1u);
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(b[i], -1.0f);
}

TEST(RobustService, PreCancelledRequestResolvesWithoutExecuting) {
  ServiceFixture fx;
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::bit_reversal(n);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);

  runtime::CancelSource cancel;
  cancel.request_cancel();
  runtime::RequestOptions opts;
  opts.cancel = cancel.token();
  auto submitted =
      fx.service.submit<float>(p, std::span<const float>(a.data(), n),
                               std::span<float>(b.data(), n), opts);
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(fx.service.metrics().snapshot().submitted, 0u);
}

TEST(RobustService, HappyPathServesAndCaches) {
  ServiceFixture fx;
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::bit_reversal(n);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);

  for (int round = 0; round < 2; ++round) {
    auto submitted = fx.service.submit<float>(p, std::span<const float>(a.data(), n),
                                              std::span<float>(b.data(), n));
    ASSERT_TRUE(submitted.ok());
    EXPECT_TRUE(std::move(submitted).value().get().is_ok());
  }
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(b[p(i)], a[i]);
  const runtime::MetricsSnapshot snap = fx.service.metrics().snapshot();
  EXPECT_EQ(snap.plan_builds, 1u);  // second round is a cache hit
  EXPECT_EQ(snap.hits, 1u);
  EXPECT_EQ(snap.degraded_executions, 0u);
}

TEST(RobustService, TransientBuildFailureIsRetriedThenServedOptimally) {
  // Find a seed whose plan_cache.build stream goes [fire, pass]: the
  // first build attempt fails, the single retry succeeds.
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 512; ++s) {
    runtime::ScopedFaultInjection probe(
        {.seed = s, .rate = 0.5, .sites = std::string(runtime::fault_sites::kPlanBuild)});
    auto& faults = runtime::FaultInjector::instance();
    const bool first = faults.should_fire(runtime::fault_sites::kPlanBuild);
    const bool second = faults.should_fire(runtime::fault_sites::kPlanBuild);
    if (first && !second) {
      seed = s;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no [fire, pass] seed below 512 (injector broken?)";

  runtime::RobustPermuteService::Config config;
  config.max_build_retries = 1;
  config.retry_backoff_base = std::chrono::microseconds(10);
  ServiceFixture fx(config);
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::bit_reversal(n);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);

  runtime::ScopedFaultInjection chaos(
      {.seed = seed, .rate = 0.5, .sites = std::string(runtime::fault_sites::kPlanBuild)});
  auto submitted = fx.service.submit<float>(p, std::span<const float>(a.data(), n),
                                            std::span<float>(b.data(), n));
  ASSERT_TRUE(submitted.ok());
  EXPECT_TRUE(std::move(submitted).value().get().is_ok());
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(b[p(i)], a[i]);

  const runtime::MetricsSnapshot snap = fx.service.metrics().snapshot();
  EXPECT_EQ(snap.build_retries, 1u);
  EXPECT_EQ(snap.plan_builds, 1u);        // the retry built the real plan
  EXPECT_EQ(snap.degraded_executions, 0u);  // never fell off the optimal tier
}

TEST(RobustService, ExhaustedRetriesDegradeToConventionalAndStayCorrect) {
  runtime::RobustPermuteService::Config config;
  config.max_build_retries = 1;
  config.retry_backoff_base = std::chrono::microseconds(10);
  ServiceFixture fx(config);
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::bit_reversal(n);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);

  runtime::ScopedFaultInjection chaos(
      {.seed = 2, .rate = 1.0, .sites = std::string(runtime::fault_sites::kPlanBuild)});
  auto submitted = fx.service.submit<float>(p, std::span<const float>(a.data(), n),
                                            std::span<float>(b.data(), n));
  ASSERT_TRUE(submitted.ok());
  EXPECT_TRUE(std::move(submitted).value().get().is_ok());
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(b[p(i)], a[i]);

  const runtime::MetricsSnapshot snap = fx.service.metrics().snapshot();
  EXPECT_EQ(snap.degraded_executions, 1u);
  EXPECT_EQ(snap.build_retries, 1u);
  EXPECT_EQ(snap.plan_builds, 0u);  // every scheduled build failed
}

TEST(RobustService, DegradationOffSurfacesTheBuildError) {
  runtime::RobustPermuteService::Config config;
  config.allow_degraded = false;
  config.max_build_retries = 0;
  ServiceFixture fx(config);
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::bit_reversal(n);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n);

  runtime::ScopedFaultInjection chaos(
      {.seed = 2, .rate = 1.0, .sites = std::string(runtime::fault_sites::kPlanBuild)});
  auto submitted = fx.service.submit<float>(p, std::span<const float>(a.data(), n),
                                            std::span<float>(b.data(), n));
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kPlanBuildFailed);
  EXPECT_EQ(fx.service.metrics().snapshot().submitted, 0u);
}

// The ISSUE acceptance scenario: 30% plan-build fault rate, every
// accepted request still resolves OK with a fully correct output, the
// process never aborts, and the degraded/retry counters expose what the
// ladder absorbed.
TEST(RobustService, ChaosThirtyPercentBuildFailureServesEveryAcceptedRequest) {
  runtime::RobustPermuteService::Config config;
  config.max_build_retries = 1;
  config.retry_backoff_base = std::chrono::microseconds(10);
  ServiceFixture fx(config);

  const std::uint64_t n = 1024;
  const std::uint64_t kPerms = 30;
  std::vector<perm::Permutation> population;
  for (std::uint64_t r = 0; r < kPerms; ++r) {
    population.push_back(perm::by_name("random", n, 1000 + r));
  }
  const auto a = test::iota_data<float>(n);

  struct Request {
    std::uint64_t rank;
    util::aligned_vector<float> b;
    std::future<runtime::Status> done;
  };
  std::vector<Request> requests;

  runtime::ScopedFaultInjection chaos(
      {.seed = 7, .rate = 0.3, .sites = std::string(runtime::fault_sites::kPlanBuild)});
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t r = 0; r < kPerms; ++r) {
      Request req;
      req.rank = r;
      req.b.assign(n, -1.0f);
      auto submitted = fx.service.submit<float>(population[r],
                                                std::span<const float>(a.data(), n),
                                                std::span<float>(req.b.data(), n));
      ASSERT_TRUE(submitted.ok()) << submitted.status().to_string();
      req.done = std::move(submitted).value();
      requests.push_back(std::move(req));
    }
  }

  const std::uint64_t fired =
      runtime::FaultInjector::instance().fired(runtime::fault_sites::kPlanBuild);
  EXPECT_GT(fired, 0u) << "chaos run injected nothing";

  // 100% of accepted requests must resolve OK with a correct output.
  for (Request& req : requests) {
    const runtime::Status status = req.done.get();
    ASSERT_TRUE(status.is_ok()) << status.to_string();
    const perm::Permutation& p = population[req.rank];
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(req.b[p(i)], a[i]) << "perm " << req.rank << " at index " << i;
    }
  }
  fx.service.wait_idle();

  const runtime::MetricsSnapshot snap = fx.service.metrics().snapshot();
  EXPECT_EQ(snap.completed, requests.size());
  EXPECT_EQ(snap.failed, 0u);
  EXPECT_GT(snap.degraded_executions, 0u);  // seed 7 exhausts retries at least once
  EXPECT_GT(snap.build_retries, 0u);
  // Every request was served by *some* tier: the optimal one (built or
  // cached) or the conventional fallback.
  EXPECT_EQ(snap.submitted, requests.size());
}

// ----------------------------------------------------------- plan_io status

std::string temp_plan_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(PlanLoad, CheckedLoaderRoundTrips) {
  const perm::Permutation p = perm::bit_reversal(4096);
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, model::MachineParams::gtx680());
  const std::string path = temp_plan_path("robust_roundtrip.hmmplan");
  ASSERT_TRUE(core::save_plan_file(path, plan));

  StatusOr<core::ScheduledPlan> loaded = runtime::load_plan_checked(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().size(), plan.size());
  EXPECT_TRUE(loaded.value().validate(p));
  std::remove(path.c_str());
}

TEST(PlanLoad, MissingFileIsUnavailable) {
  StatusOr<core::ScheduledPlan> loaded =
      runtime::load_plan_checked(temp_plan_path("does_not_exist.hmmplan"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(loaded.status().message().empty());
}

TEST(PlanLoad, InjectedCorruptionIsRejectedAsInvalid) {
  const perm::Permutation p = perm::bit_reversal(4096);
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, model::MachineParams::gtx680());
  const std::string path = temp_plan_path("robust_corrupt.hmmplan");
  ASSERT_TRUE(core::save_plan_file(path, plan));

  runtime::ScopedFaultInjection chaos(
      {.seed = 3, .rate = 1.0, .sites = std::string(runtime::fault_sites::kPlanRead)});
  StatusOr<core::ScheduledPlan> loaded = runtime::load_plan_checked(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(loaded.status().message().empty());  // carries the loader's reason
  std::remove(path.c_str());
}

TEST(PlanLoad, LoaderNamesTheReason) {
  std::istringstream garbage("definitely not a plan file");
  std::string reason;
  EXPECT_FALSE(core::load_plan(garbage, &reason).has_value());
  EXPECT_NE(reason.find("magic"), std::string::npos);

  std::istringstream empty;
  reason.clear();
  EXPECT_FALSE(core::load_plan(empty, &reason).has_value());
  EXPECT_FALSE(reason.empty());
}

}  // namespace
}  // namespace hmm
