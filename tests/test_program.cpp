/// Tests for the PROGRAM subsystem: the op-chain IR and its validating
/// resolver (every hostile shape is a typed rejection, never an abort),
/// the fusion compiler's algebra (fused == staged == sequential,
/// inverse chains fold to the identity, composition associates), the
/// service-level paths (identity fast-path, composite-cache repeats,
/// single-flight first submissions, pooled-buffer release under
/// injected stage faults), and the EXECUTE_PROGRAM loopback surface —
/// including a hostile-frame battery proving a malformed program can
/// never take the server down.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/frame_io.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "perm/generators.hpp"
#include "perm/permutation.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/metrics.hpp"
#include "runtime/program.hpp"
#include "runtime/service.hpp"
#include "runtime/status.hpp"
#include "util/buffer_pool.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hmm {
namespace {

using namespace std::chrono_literals;
using runtime::Fingerprint;
using runtime::Program;
using runtime::ProgramOp;
using runtime::ProgramOpCode;
using runtime::Status;
using runtime::StatusCode;

/// Resolver over an in-test registry, the same shape the server binds.
class Registry {
 public:
  std::uint64_t add(perm::Permutation p) {
    auto plan = std::make_shared<const perm::Permutation>(std::move(p));
    const std::uint64_t id = runtime::fingerprint_permutation(*plan).value;
    plans_[id] = std::move(plan);
    return id;
  }

  [[nodiscard]] runtime::PlanResolver resolver() const {
    return [this](std::uint64_t fp) -> std::shared_ptr<const perm::Permutation> {
      const auto it = plans_.find(fp);
      return it == plans_.end() ? nullptr : it->second;
    };
  }

 private:
  std::map<std::uint64_t, std::shared_ptr<const perm::Permutation>> plans_;
};

perm::Permutation random_perm(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return perm::random(n, rng);
}

/// Apply the chain stage by stage — the semantic ground truth the
/// fused path must reproduce bit for bit.
template <class T>
std::vector<T> apply_chain(const std::vector<perm::Permutation>& chain,
                           const std::vector<T>& input) {
  std::vector<T> cur = input;
  std::vector<T> next(input.size());
  for (const perm::Permutation& p : chain) {
    p.apply<T>({cur.data(), cur.size()}, {next.data(), next.size()});
    cur.swap(next);
  }
  return cur;
}

template <class T>
std::vector<T> make_input(std::uint64_t n) {
  std::vector<T> a(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    a[i] = static_cast<T>(static_cast<std::uint32_t>(i * 2654435761u) % 100003u);
  }
  return a;
}

// ------------------------------------------------------- fingerprints

TEST(ProgramFingerprint, OrderAndSizeSensitive) {
  const std::vector<ProgramOp> ab = {{ProgramOpCode::kShuffle, 0},
                                     {ProgramOpCode::kRotate, 3}};
  const std::vector<ProgramOp> ba = {{ProgramOpCode::kRotate, 3},
                                     {ProgramOpCode::kShuffle, 0}};
  const Fingerprint f_ab = runtime::program_fingerprint({ab.data(), ab.size()}, 256);
  const Fingerprint f_ba = runtime::program_fingerprint({ba.data(), ba.size()}, 256);
  const Fingerprint f_ab2 = runtime::program_fingerprint({ab.data(), ab.size()}, 256);
  const Fingerprint f_ab_512 = runtime::program_fingerprint({ab.data(), ab.size()}, 512);
  EXPECT_EQ(f_ab.value, f_ab2.value);       // deterministic
  EXPECT_NE(f_ab.value, f_ba.value);        // composition does not commute
  EXPECT_NE(f_ab.value, f_ab_512.value);    // n is part of the identity
}

TEST(ProgramFingerprint, ArgIsPartOfTheIdentity) {
  const std::vector<ProgramOp> r3 = {{ProgramOpCode::kRotate, 3}};
  const std::vector<ProgramOp> r4 = {{ProgramOpCode::kRotate, 4}};
  EXPECT_NE(runtime::program_fingerprint({r3.data(), 1}, 64).value,
            runtime::program_fingerprint({r4.data(), 1}, 64).value);
}

// --------------------------------------------------------- resolution

TEST(ProgramResolve, RejectsStructurallyInvalidChainsTyped) {
  Registry reg;
  const runtime::PlanResolver resolver = reg.resolver();

  const auto reject = [&](Program program, std::uint64_t n) {
    const auto r = runtime::resolve_program(program, n, resolver);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << r.status().to_string();
  };

  reject(Program{}, 64);                                          // empty chain
  reject(Program{{{ProgramOpCode::kShuffle, 0}}}, 0);             // n == 0
  Program too_deep;
  too_deep.ops.assign(runtime::kMaxProgramOps + 1, {ProgramOpCode::kRotate, 1});
  reject(too_deep, 64);                                           // over the op cap
  reject(Program{{{static_cast<ProgramOpCode>(99), 0}}}, 64);     // unknown opcode
  reject(Program{{{ProgramOpCode::kShuffle, 7}}}, 64);            // nonzero generator arg
  reject(Program{{{ProgramOpCode::kShuffle, 0}}}, 100);           // non-pow2 shuffle
  reject(Program{{{ProgramOpCode::kReverse, 0}}}, 100);           // non-pow2 reverse
  reject(Program{{{ProgramOpCode::kBitReversal, 0}}}, 96);        // non-pow2 bit-reversal
  reject(Program{{{ProgramOpCode::kTranspose, 0}}}, 128);         // non-square transpose
  reject(Program{{{ProgramOpCode::kPermute, 0xdeadbeefull}}}, 64);  // unregistered plan
}

TEST(ProgramResolve, MismatchedSizePlanRejectedBeforeCompose) {
  // The critical gate: a registered 64-element plan referenced by a
  // 128-element program must be a typed rejection — compose()'s own
  // size check is a process abort, and hostile input must never reach
  // it. Chain it *after* a valid op so the failure happens mid-chain.
  Registry reg;
  const std::uint64_t small_id = reg.add(random_perm(64, 7));
  Program program;
  program.ops = {{ProgramOpCode::kShuffle, 0}, {ProgramOpCode::kPermute, small_id}};
  const auto r = runtime::resolve_program(program, 128, reg.resolver());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("does not match"), std::string::npos)
      << r.status().message();
}

TEST(ProgramResolve, ResolvesPlansInversesAndGenerators) {
  Registry reg;
  const std::uint64_t n = 256;
  const perm::Permutation p = random_perm(n, 11);
  const std::uint64_t id = reg.add(p);

  Program program;
  program.ops = {{ProgramOpCode::kPermute, id},
                 {ProgramOpCode::kInverse, id},
                 {ProgramOpCode::kShuffle, 0},
                 {ProgramOpCode::kRotate, 1000}};  // shift taken mod n
  const auto r = runtime::resolve_program(program, n, reg.resolver());
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  ASSERT_EQ(r.value().stages.size(), 4u);
  EXPECT_EQ(*r.value().stages[0], p);
  EXPECT_EQ(*r.value().stages[1], p.inverse());
  EXPECT_EQ(*r.value().stages[2], perm::shuffle(n));
  EXPECT_EQ(*r.value().stages[3], perm::rotation(n, 1000 % n));
}

// -------------------------------------------------------------- fusion

TEST(ProgramFuse, FusedMatchesSequentialApplication) {
  const std::uint64_t n = 512;
  Registry reg;
  util::Xoshiro256 rng(99);
  for (std::uint64_t depth = 2; depth <= 6; ++depth) {
    Program program;
    std::vector<perm::Permutation> chain;
    for (std::uint64_t d = 0; d < depth; ++d) {
      perm::Permutation p = perm::random(n, rng);
      program.ops.push_back({ProgramOpCode::kPermute, reg.add(p)});
      chain.push_back(std::move(p));
    }
    const auto resolved = runtime::resolve_program(program, n, reg.resolver());
    ASSERT_TRUE(resolved.ok());
    const auto fused = runtime::fuse_program(resolved.value());
    ASSERT_TRUE(fused.ok()) << fused.status().to_string();

    const std::vector<std::uint32_t> input = make_input<std::uint32_t>(n);
    const std::vector<std::uint32_t> expect = apply_chain(chain, input);
    std::vector<std::uint32_t> got(n);
    fused.value().apply<std::uint32_t>({input.data(), n}, {got.data(), n});
    EXPECT_EQ(got, expect) << "depth " << depth;
  }
}

TEST(ProgramFuse, InverseChainFoldsToIdentity) {
  const std::uint64_t n = 256;
  Registry reg;
  const std::uint64_t id = reg.add(random_perm(n, 5));
  Program program;
  program.ops = {{ProgramOpCode::kPermute, id}, {ProgramOpCode::kInverse, id}};
  const auto resolved = runtime::resolve_program(program, n, reg.resolver());
  ASSERT_TRUE(resolved.ok());
  const auto fused = runtime::fuse_program(resolved.value());
  ASSERT_TRUE(fused.ok());
  EXPECT_TRUE(fused.value().is_identity());
}

TEST(ProgramFuse, CompositionAssociates) {
  // fuse(P1,P2,P3) must equal fuse(fuse(P1,P2), P3): the program
  // algebra inherits associativity from permutation composition, so
  // splitting a chain at any point yields the same composite.
  const std::uint64_t n = 128;
  Registry reg;
  std::vector<std::uint64_t> ids;
  std::vector<perm::Permutation> chain;
  for (int i = 0; i < 3; ++i) {
    perm::Permutation p = random_perm(n, 100 + static_cast<std::uint64_t>(i));
    ids.push_back(reg.add(p));
    chain.push_back(std::move(p));
  }
  const auto fuse_ids = [&](const std::vector<std::uint64_t>& which) {
    Program program;
    for (std::uint64_t id : which) program.ops.push_back({ProgramOpCode::kPermute, id});
    const auto resolved = runtime::resolve_program(program, n, reg.resolver());
    EXPECT_TRUE(resolved.ok());
    auto fused = runtime::fuse_program(resolved.value());
    EXPECT_TRUE(fused.ok());
    return std::move(fused).value();
  };

  const perm::Permutation whole = fuse_ids({ids[0], ids[1], ids[2]});
  const std::uint64_t prefix_id = reg.add(fuse_ids({ids[0], ids[1]}));
  const perm::Permutation split = fuse_ids({prefix_id, ids[2]});
  EXPECT_EQ(whole, split);
}

// ------------------------------------------------------ service paths

runtime::RobustPermuteService::Config quiet_config() {
  runtime::RobustPermuteService::Config config;
  config.max_build_retries = 0;
  return config;
}

template <class T>
void expect_fused_staged_sequential_identical(std::uint64_t n, std::uint64_t depth,
                                              std::uint64_t seed) {
  runtime::RobustPermuteService service(util::ThreadPool::global(), quiet_config());
  Registry reg;
  Program program;
  std::vector<perm::Permutation> chain;
  util::Xoshiro256 rng(seed);
  for (std::uint64_t d = 0; d < depth; ++d) {
    perm::Permutation p = perm::random(n, rng);
    program.ops.push_back({ProgramOpCode::kPermute, reg.add(p)});
    chain.push_back(std::move(p));
  }
  const std::vector<T> input = make_input<T>(n);
  const std::vector<T> expect = apply_chain(chain, input);

  std::vector<T> fused_out(n);
  auto fused = service.submit_program<T>(program, reg.resolver(), {input.data(), n},
                                         {fused_out.data(), n});
  ASSERT_TRUE(fused.ok()) << fused.status().to_string();
  ASSERT_TRUE(fused.value().get().is_ok());

  std::vector<T> staged_out(n);
  runtime::ProgramRequestOptions staged_opts;
  staged_opts.force_staged = true;
  auto staged = service.submit_program<T>(program, reg.resolver(), {input.data(), n},
                                          {staged_out.data(), n}, staged_opts);
  ASSERT_TRUE(staged.ok()) << staged.status().to_string();
  ASSERT_TRUE(staged.value().get().is_ok());

  // Bit-identical across all three: sequential ground truth, the fused
  // composite, and the staged ping-pong run.
  EXPECT_EQ(fused_out, expect);
  EXPECT_EQ(staged_out, expect);

  const runtime::MetricsSnapshot snap = service.metrics().snapshot();
  EXPECT_EQ(snap.programs_executed, 2u);
  EXPECT_EQ(snap.programs_fused, 1u);
  EXPECT_EQ(snap.programs_staged, 1u);
  EXPECT_EQ(snap.program_stages_max, depth);
}

TEST(ServiceProgram, FusedStagedSequentialIdenticalU32) {
  for (std::uint64_t depth = 2; depth <= 6; ++depth) {
    expect_fused_staged_sequential_identical<std::uint32_t>(1 << 10, depth, 40 + depth);
  }
}

TEST(ServiceProgram, FusedStagedSequentialIdenticalFloat) {
  expect_fused_staged_sequential_identical<float>(1 << 10, 3, 77);
}

TEST(ServiceProgram, FusedStagedSequentialIdenticalDouble) {
  expect_fused_staged_sequential_identical<double>(1 << 10, 4, 78);
}

TEST(ServiceProgram, IdentityFastPathSkipsThePlanTier) {
  const std::uint64_t n = 1 << 12;
  runtime::RobustPermuteService service(util::ThreadPool::global(), quiet_config());
  Registry reg;
  const std::uint64_t id = reg.add(random_perm(n, 3));
  Program program;
  program.ops = {{ProgramOpCode::kPermute, id}, {ProgramOpCode::kInverse, id}};

  const std::vector<std::uint32_t> input = make_input<std::uint32_t>(n);
  std::vector<std::uint32_t> out(n, 0);
  auto submitted = service.submit_program<std::uint32_t>(program, reg.resolver(),
                                                         {input.data(), n}, {out.data(), n});
  ASSERT_TRUE(submitted.ok()) << submitted.status().to_string();
  ASSERT_TRUE(submitted.value().get().is_ok());
  EXPECT_EQ(out, input);  // P then P^-1 echoes the input bit for bit

  const runtime::MetricsSnapshot snap = service.metrics().snapshot();
  EXPECT_EQ(snap.programs_identity, 1u);
  EXPECT_EQ(snap.programs_executed, 1u);
  EXPECT_EQ(snap.plan_builds, 0u);   // no composite plan was ever compiled
  EXPECT_EQ(snap.lookups, 0u);       // the plan cache was never consulted
}

TEST(ServiceProgram, RepeatedProgramHitsTheCompositeCache) {
  const std::uint64_t n = 1 << 10;
  runtime::RobustPermuteService service(util::ThreadPool::global(), quiet_config());
  Registry reg;
  Program program;
  std::vector<perm::Permutation> chain;
  util::Xoshiro256 rng(123);
  for (int d = 0; d < 3; ++d) {
    perm::Permutation p = perm::random(n, rng);
    program.ops.push_back({ProgramOpCode::kPermute, reg.add(p)});
    chain.push_back(std::move(p));
  }
  const std::vector<std::uint32_t> input = make_input<std::uint32_t>(n);
  const std::vector<std::uint32_t> expect = apply_chain(chain, input);

  std::vector<std::uint32_t> out(n);
  for (int round = 0; round < 2; ++round) {
    auto submitted = service.submit_program<std::uint32_t>(program, reg.resolver(),
                                                           {input.data(), n}, {out.data(), n});
    ASSERT_TRUE(submitted.ok());
    ASSERT_TRUE(submitted.value().get().is_ok());
    EXPECT_EQ(out, expect);
  }

  const runtime::MetricsSnapshot snap = service.metrics().snapshot();
  EXPECT_EQ(snap.programs_fused, 2u);
  // One composite, compiled once: the second run was a pure cache hit
  // (the composite memo skips re-resolution, the plan cache skips the
  // rebuild).
  EXPECT_EQ(snap.plan_builds, 1u);
  EXPECT_GE(snap.hits, 1u);
}

TEST(ServiceProgram, ConcurrentFirstSubmissionsSingleFlight) {
  const std::uint64_t n = 1 << 10;
  runtime::RobustPermuteService service(util::ThreadPool::global(), quiet_config());
  Registry reg;
  Program program;
  std::vector<perm::Permutation> chain;
  util::Xoshiro256 rng(321);
  for (int d = 0; d < 3; ++d) {
    perm::Permutation p = perm::random(n, rng);
    program.ops.push_back({ProgramOpCode::kPermute, reg.add(p)});
    chain.push_back(std::move(p));
  }
  const std::vector<std::uint32_t> input = make_input<std::uint32_t>(n);
  const std::vector<std::uint32_t> expect = apply_chain(chain, input);

  constexpr int kThreads = 8;
  std::vector<std::vector<std::uint32_t>> outs(kThreads, std::vector<std::uint32_t>(n));
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto submitted = service.submit_program<std::uint32_t>(
          program, reg.resolver(), {input.data(), n}, {outs[t].data(), n});
      if (!submitted.ok() || !submitted.value().get().is_ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(outs[t], expect);

  // The plan cache single-flights the composite build: one compile no
  // matter how many first submissions raced.
  const runtime::MetricsSnapshot snap = service.metrics().snapshot();
  EXPECT_EQ(snap.plan_builds, 1u);
  EXPECT_EQ(snap.programs_fused, static_cast<std::uint64_t>(kThreads));
}

TEST(ServiceProgram, MismatchedChainRejectedSynchronouslyTyped) {
  const std::uint64_t n = 256;
  runtime::RobustPermuteService service(util::ThreadPool::global(), quiet_config());
  Registry reg;
  const std::uint64_t small_id = reg.add(random_perm(64, 9));
  Program program;
  program.ops = {{ProgramOpCode::kRotate, 1}, {ProgramOpCode::kPermute, small_id}};

  const std::vector<std::uint32_t> input = make_input<std::uint32_t>(n);
  std::vector<std::uint32_t> out(n);
  auto submitted = service.submit_program<std::uint32_t>(program, reg.resolver(),
                                                         {input.data(), n}, {out.data(), n});
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.metrics().snapshot().programs_executed, 0u);
}

TEST(ServiceProgram, StagedStageFaultReleasesPooledBuffers) {
  // Arm the program.stage site at rate 1.0: the staged run fails at the
  // first stage boundary. The request must resolve typed (the injected
  // kUnavailable), and every pooled intermediate must go back to the
  // pool — outstanding bytes return to baseline (ASan covers the leak
  // half; this covers the pool-accounting half).
  const std::uint64_t n = 1 << 10;
  runtime::RobustPermuteService service(util::ThreadPool::global(), quiet_config());
  Registry reg;
  Program program;
  util::Xoshiro256 rng(555);
  for (int d = 0; d < 3; ++d) {
    program.ops.push_back({ProgramOpCode::kPermute, reg.add(perm::random(n, rng))});
  }
  const std::vector<std::uint32_t> input = make_input<std::uint32_t>(n);
  std::vector<std::uint32_t> out(n);

  const std::uint64_t baseline =
      util::BufferPool::global().stats().outstanding_bytes;
  Status outcome = Status::ok();
  {
    runtime::FaultInjector::Config fault;
    fault.enabled = true;
    fault.seed = 1;
    fault.rate = 1.0;
    fault.sites = std::string(runtime::fault_sites::kProgramStage);
    runtime::ScopedFaultInjection armed(fault);

    runtime::ProgramRequestOptions opts;
    opts.force_staged = true;
    auto submitted = service.submit_program<std::uint32_t>(
        program, reg.resolver(), {input.data(), n}, {out.data(), n}, opts);
    ASSERT_TRUE(submitted.ok()) << submitted.status().to_string();
    outcome = submitted.value().get();
  }
  EXPECT_EQ(outcome.code(), StatusCode::kUnavailable) << outcome.to_string();
  EXPECT_EQ(util::BufferPool::global().stats().outstanding_bytes, baseline);

  // The service stays healthy: the same program succeeds once disarmed.
  auto retry = service.submit_program<std::uint32_t>(program, reg.resolver(),
                                                     {input.data(), n}, {out.data(), n});
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry.value().get().is_ok());
}

// ---------------------------------------------------------- loopback

struct Loopback {
  runtime::RobustPermuteService service;
  net::Server server;

  Loopback()
      : service(util::ThreadPool::global(), quiet_config()), server(service) {
    const Status started = server.start();
    EXPECT_TRUE(started.is_ok()) << started.to_string();
  }

  [[nodiscard]] net::Client::Config client_config() const {
    net::Client::Config c;
    c.host = "127.0.0.1";
    c.port = server.port();
    c.connect_timeout = 2'000ms;
    c.io_timeout = 10'000ms;
    return c;
  }
};

TEST(NetProgram, ExecuteProgramEndToEnd) {
  const std::uint64_t n = 1 << 10;
  Loopback loop;
  net::Client client(loop.client_config());

  const perm::Permutation p = random_perm(n, 17);
  const auto plan_id = client.submit_plan(p);
  ASSERT_TRUE(plan_id.ok()) << plan_id.status().to_string();

  const std::vector<ProgramOp> ops = {{ProgramOpCode::kPermute, plan_id.value()},
                                      {ProgramOpCode::kShuffle, 0},
                                      {ProgramOpCode::kRotate, 5}};
  const std::vector<perm::Permutation> chain = {p, perm::shuffle(n), perm::rotation(n, 5)};
  const std::vector<std::uint32_t> input = make_input<std::uint32_t>(n);
  const std::vector<std::uint32_t> expect = apply_chain(chain, input);

  std::vector<std::uint32_t> fused_out(n), staged_out(n);
  Status s = client.execute_program({ops.data(), ops.size()}, {input.data(), n},
                                    {fused_out.data(), n});
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  s = client.execute_program({ops.data(), ops.size()}, {input.data(), n},
                             {staged_out.data(), n}, 0ms, /*staged=*/true);
  ASSERT_TRUE(s.is_ok()) << s.to_string();

  EXPECT_EQ(fused_out, expect);
  EXPECT_EQ(staged_out, expect);

  const runtime::MetricsSnapshot snap = loop.service.metrics().snapshot();
  EXPECT_EQ(snap.programs_fused, 1u);
  EXPECT_EQ(snap.programs_staged, 1u);
  EXPECT_GT(snap.phase(runtime::Phase::kProgramCompile).count, 0u);
}

TEST(NetProgram, ProgramEqualsKSeparatePermutes) {
  // The tentpole claim at the wire level: one EXECUTE_PROGRAM round
  // trip produces exactly what k sequential PERMUTE round trips (each
  // feeding the next) produce.
  const std::uint64_t n = 1 << 10;
  Loopback loop;
  net::Client client(loop.client_config());

  std::vector<std::uint64_t> ids;
  std::vector<ProgramOp> ops;
  util::Xoshiro256 rng(31);
  for (int d = 0; d < 4; ++d) {
    const auto id = client.submit_plan(perm::random(n, rng));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
    ops.push_back({ProgramOpCode::kPermute, id.value()});
  }

  const std::vector<std::uint32_t> input = make_input<std::uint32_t>(n);
  std::vector<std::uint32_t> program_out(n);
  ASSERT_TRUE(client.execute_program({ops.data(), ops.size()}, {input.data(), n},
                                     {program_out.data(), n})
                  .is_ok());

  std::vector<std::uint32_t> cur = input, next(n);
  for (std::uint64_t id : ids) {
    ASSERT_TRUE(client.permute(id, {cur.data(), n}, {next.data(), n}).is_ok());
    cur.swap(next);
  }
  EXPECT_EQ(program_out, cur);
}

/// Send one raw EXECUTE_PROGRAM payload and expect a typed ERROR
/// response carrying INVALID_ARGUMENT.
void expect_program_rejected(net::TcpStream& stream, std::vector<std::uint8_t> payload,
                             const char* what) {
  static std::uint64_t next_id = 7000;
  net::Frame request;
  request.kind = static_cast<std::uint16_t>(net::MsgKind::kExecuteProgram);
  request.request_id = next_id++;
  request.payload = std::move(payload);
  ASSERT_TRUE(net::write_frame(stream, request).is_ok()) << what;
  auto response = net::read_frame(stream, net::kDefaultMaxPayload);
  ASSERT_TRUE(response.ok()) << what;
  ASSERT_EQ(static_cast<net::MsgKind>(response.value().kind), net::MsgKind::kError) << what;
  auto err = net::ErrorResponse::decode(response.value().payload);
  ASSERT_TRUE(err.ok()) << what;
  EXPECT_EQ(err.value().to_status().code(), StatusCode::kInvalidArgument) << what;
}

TEST(NetProgram, HostileProgramsRejectedTypedAndServerSurvives) {
  const std::uint64_t n = 256;
  Loopback loop;
  net::Client client(loop.client_config());
  const auto small_id = client.submit_plan(random_perm(64, 1));  // 64 != n: mismatched chain
  ASSERT_TRUE(small_id.ok());

  auto conn = net::tcp_connect("127.0.0.1", loop.server.port(), 2'000ms);
  ASSERT_TRUE(conn.ok());
  net::TcpStream stream = std::move(conn).value();
  ASSERT_TRUE(stream.set_io_timeout(5'000ms, 5'000ms).is_ok());

  const std::vector<std::uint32_t> data = make_input<std::uint32_t>(n);
  const auto encode = [&](std::uint32_t flags, std::vector<ProgramOp> ops) {
    net::ExecuteProgramRequest req;
    req.flags = flags;
    req.ops = std::move(ops);
    req.data = data;
    return req.encode();
  };

  expect_program_rejected(stream, encode(0, {}), "zero ops");
  expect_program_rejected(
      stream,
      encode(0, std::vector<ProgramOp>(runtime::kMaxProgramOps + 1,
                                       {ProgramOpCode::kRotate, 1})),
      "op count over the cap");
  expect_program_rejected(stream,
                          encode(0, {{static_cast<ProgramOpCode>(0xabu), 0}}),
                          "unknown opcode");
  expect_program_rejected(stream, encode(0x2, {{ProgramOpCode::kRotate, 1}}),
                          "unknown flag bits");
  expect_program_rejected(stream, encode(0, {{ProgramOpCode::kShuffle, 5}}),
                          "nonzero generator arg");
  expect_program_rejected(stream,
                          encode(0, {{ProgramOpCode::kPermute, 0x1234ull}}),
                          "unregistered fingerprint");
  expect_program_rejected(stream,
                          encode(0, {{ProgramOpCode::kPermute, small_id.value()}}),
                          "mismatched plan size");
  {
    // Generator precondition at the wire level: shuffle over a 100-
    // element (non-power-of-two) payload.
    net::ExecuteProgramRequest req;
    req.ops = {{ProgramOpCode::kShuffle, 0}};
    req.data.assign(100, 7u);
    expect_program_rejected(stream, req.encode(), "non-pow2 shuffle");
  }

  // Hand-rolled malformations the typed encoder cannot produce.
  {
    net::ByteWriter w;  // wrong element width
    w.put_u32(0);
    w.put_u32(8);
    w.put_u32(0);
    w.put_u32(1);
    w.put_u32(static_cast<std::uint32_t>(ProgramOpCode::kRotate));
    w.put_u32(0);
    w.put_u64(1);
    w.put_u64(4);
    w.put_u32_span(std::vector<std::uint32_t>{1, 2, 3, 4});
    expect_program_rejected(stream, w.take(), "elem_bytes != 4");
  }
  {
    net::ByteWriter w;  // nonzero reserved op field
    w.put_u32(0);
    w.put_u32(4);
    w.put_u32(0);
    w.put_u32(1);
    w.put_u32(static_cast<std::uint32_t>(ProgramOpCode::kRotate));
    w.put_u32(0xffffffffu);
    w.put_u64(1);
    w.put_u64(4);
    w.put_u32_span(std::vector<std::uint32_t>{1, 2, 3, 4});
    expect_program_rejected(stream, w.take(), "reserved op field nonzero");
  }
  {
    net::ByteWriter w;  // count disagrees with the payload length
    w.put_u32(0);
    w.put_u32(4);
    w.put_u32(0);
    w.put_u32(1);
    w.put_u32(static_cast<std::uint32_t>(ProgramOpCode::kRotate));
    w.put_u32(0);
    w.put_u64(1);
    w.put_u64(100);  // claims 100 elements...
    w.put_u32_span(std::vector<std::uint32_t>{1, 2, 3, 4});  // ...carries 4
    expect_program_rejected(stream, w.take(), "count/payload mismatch");
  }
  {
    net::ByteWriter w;  // truncated op list
    w.put_u32(0);
    w.put_u32(4);
    w.put_u32(0);
    w.put_u32(3);  // claims 3 ops, carries half of one
    w.put_u32(static_cast<std::uint32_t>(ProgramOpCode::kRotate));
    expect_program_rejected(stream, w.take(), "truncated op list");
  }

  // The server survived the whole battery: same connection still
  // serves, fresh connections still serve, and a valid program works.
  net::Client after(loop.client_config());
  EXPECT_TRUE(after.ping().is_ok());
  const auto good_id = after.submit_plan(random_perm(n, 2));
  ASSERT_TRUE(good_id.ok());
  const std::vector<ProgramOp> good = {{ProgramOpCode::kPermute, good_id.value()}};
  std::vector<std::uint32_t> out(n);
  EXPECT_TRUE(
      after.execute_program({good.data(), 1}, {data.data(), n}, {out.data(), n}).is_ok());
  EXPECT_EQ(loop.server.counters().protocol_errors, 0u);  // rejected, not garbled
}

TEST(NetProgram, WireCodecRoundTrip) {
  net::ExecuteProgramRequest req;
  req.deadline_ms = 1234;
  req.flags = net::kProgramFlagStaged;
  req.ops = {{ProgramOpCode::kPermute, 0xfeedfacecafeull},
             {ProgramOpCode::kInverse, 0x1ull},
             {ProgramOpCode::kRotate, 42}};
  req.data = {10, 20, 30, 40, 50};
  const std::vector<std::uint8_t> bytes = req.encode();

  // Layout check: the data offset must keep elements 4-byte aligned.
  EXPECT_EQ(bytes.size(), 24 + 16 * req.ops.size() + req.data.size() * 4);
  EXPECT_EQ((24 + 16 * req.ops.size()) % 8, 0u);

  const auto decoded = net::ExecuteProgramRequest::decode(bytes, 1 << 20);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().deadline_ms, req.deadline_ms);
  EXPECT_EQ(decoded.value().flags, req.flags);
  EXPECT_EQ(decoded.value().ops, req.ops);
  EXPECT_EQ(decoded.value().data, req.data);

  const auto view = net::ExecuteProgramRequestView::decode(bytes, 1 << 20);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view.value().force_staged());
  EXPECT_EQ(view.value().ops, req.ops);
  EXPECT_EQ(view.value().data.count, req.data.size());
}

}  // namespace
}  // namespace hmm
