#include <gtest/gtest.h>

#include "core/row_schedule.hpp"
#include "cpu/kernels.hpp"
#include "perm/generators.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace hmm::cpu {
namespace {

TEST(Kernels, ScatterGatherInverse) {
  util::ThreadPool pool(2);
  const std::uint64_t n = 1 << 12;
  const perm::Permutation p = perm::by_name("random", n, 5);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n), c(n);
  scatter<float>(pool, a, b, p.data());
  gather<float>(pool, b, c, p.data());
  // gather with p undoes scatter with p: c[i] = b[p[i]] = a[i].
  EXPECT_EQ(c, a);
}

TEST(Kernels, TransposeBlockedMatchesNaive) {
  util::ThreadPool pool(2);
  for (auto [rows, cols] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {32, 32}, {64, 16}, {16, 64}, {100, 52}, {1, 128}, {128, 1}, {7, 13}}) {
    const std::uint64_t n = rows * cols;
    util::aligned_vector<float> a(n), t1(n), t2(n);
    util::Xoshiro256 rng(rows * 1000 + cols);
    for (auto& v : a) v = static_cast<float>(rng.bounded(1 << 20));
    transpose_blocked<float>(pool, a, t1, rows, cols, 32);
    transpose_naive<float>(pool, a, t2, rows, cols);
    EXPECT_EQ(t1, t2) << rows << "x" << cols;
  }
}

TEST(Kernels, TransposeInvolution) {
  util::ThreadPool pool(2);
  const std::uint64_t rows = 48, cols = 80;
  util::aligned_vector<double> a(rows * cols), t(rows * cols), back(rows * cols);
  util::Xoshiro256 rng(4);
  for (auto& v : a) v = rng.uniform01();
  transpose_blocked<double>(pool, a, t, rows, cols, 16);
  transpose_blocked<double>(pool, t, back, cols, rows, 16);
  EXPECT_EQ(back, a);
}

TEST(Kernels, TransposeTileSizeIrrelevantToResult) {
  util::ThreadPool pool(2);
  const std::uint64_t rows = 96, cols = 64;
  util::aligned_vector<float> a(rows * cols), ref(rows * cols);
  util::Xoshiro256 rng(5);
  for (auto& v : a) v = static_cast<float>(rng.bounded(997));
  transpose_naive<float>(pool, a, ref, rows, cols);
  for (std::uint64_t tile : {1ull, 3ull, 8ull, 32ull, 200ull}) {
    util::aligned_vector<float> out(rows * cols);
    transpose_blocked<float>(pool, a, out, rows, cols, tile);
    EXPECT_EQ(out, ref) << "tile " << tile;
  }
}

TEST(Kernels, RowWisePassMatchesDirect) {
  util::ThreadPool pool(2);
  const std::uint64_t rows = 16, cols = 64;
  const std::uint32_t w = 8;
  // Random per-row permutations; build schedules and compare the
  // schedule path against the direct path.
  util::Xoshiro256 rng(6);
  std::vector<std::uint16_t> g(rows * cols);
  for (std::uint64_t r = 0; r < rows; ++r) {
    auto* row = g.data() + r * cols;
    for (std::uint64_t j = 0; j < cols; ++j) row[j] = static_cast<std::uint16_t>(j);
    for (std::uint64_t j = cols - 1; j > 0; --j) std::swap(row[j], row[rng.bounded(j + 1)]);
  }
  const core::RowScheduleSet set = core::build_row_schedules(g, rows, cols, w);

  const auto a = test::iota_data<float>(rows * cols);
  util::aligned_vector<float> b1(rows * cols), b2(rows * cols);
  row_wise_pass<float>(pool, a, b1, rows, cols, set.phat, set.q);
  row_wise_pass_direct<float>(pool, a, b2, rows, cols, g);
  EXPECT_EQ(b1, b2);

  // And both realize out[r][g(j)] = in[r][j].
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t j = 0; j < cols; ++j) {
      EXPECT_EQ(b1[r * cols + g[r * cols + j]], a[r * cols + j]);
    }
  }
}

TEST(Kernels, WorkOnIntegerTypes) {
  util::ThreadPool pool(1);
  const std::uint64_t n = 4096;
  const perm::Permutation p = perm::bit_reversal(n);
  const auto a = test::iota_data<std::uint64_t>(n);
  util::aligned_vector<std::uint64_t> b(n);
  scatter<std::uint64_t>(pool, a, b, p.data());
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(b[p(i)], a[i]);
}

/// Parameterized shape sweep for the row-wise pass.
class RowPassShapes
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(RowPassShapes, ScheduleAndDirectAgree) {
  const auto [rows, cols] = GetParam();
  const std::uint32_t w = 4;
  if (cols % w != 0) GTEST_SKIP();
  util::ThreadPool pool(2);
  util::Xoshiro256 rng(rows * 31 + cols);
  std::vector<std::uint16_t> g(rows * cols);
  for (std::uint64_t r = 0; r < rows; ++r) {
    auto* row = g.data() + r * cols;
    for (std::uint64_t j = 0; j < cols; ++j) row[j] = static_cast<std::uint16_t>(j);
    for (std::uint64_t j = cols - 1; j > 0; --j) std::swap(row[j], row[rng.bounded(j + 1)]);
  }
  const core::RowScheduleSet set = core::build_row_schedules(g, rows, cols, w);
  const auto a = test::iota_data<double>(rows * cols);
  util::aligned_vector<double> b1(rows * cols), b2(rows * cols);
  row_wise_pass<double>(pool, a, b1, rows, cols, set.phat, set.q);
  row_wise_pass_direct<double>(pool, a, b2, rows, cols, g);
  EXPECT_EQ(b1, b2);
}

INSTANTIATE_TEST_SUITE_P(Grid, RowPassShapes,
                         ::testing::Combine(::testing::Values(1ull, 2ull, 8ull, 64ull),
                                            ::testing::Values(4ull, 16ull, 128ull, 512ull)));

}  // namespace
}  // namespace hmm::cpu
