/// Tests for the net layer: HMMP framing (encode/decode round-trip and
/// strict rejection of truncated / foreign / oversized / corrupt
/// frames), the typed payload codecs, the Status<->wire-error bijection,
/// and a loopback end-to-end suite running `net::Server` and
/// `net::Client` in-process — including the deadline-exceeded and
/// admission-reject paths and graceful drain under load.

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/frame_io.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "perm/generators.hpp"
#include "perm/permutation.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/phase.hpp"
#include "runtime/service.hpp"
#include "runtime/status.hpp"
#include "util/buffer_pool.hpp"
#include "util/thread_pool.hpp"

namespace hmm {
namespace {

using namespace std::chrono_literals;
using runtime::Status;
using runtime::StatusCode;

// ---------------------------------------------------------------- wire

net::Frame sample_frame() {
  net::Frame f;
  f.kind = static_cast<std::uint16_t>(net::MsgKind::kPing);
  f.request_id = 0x1122334455667788ull;
  f.payload = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
  return f;
}

TEST(Wire, FrameRoundTrip) {
  const net::Frame in = sample_frame();
  const std::vector<std::uint8_t> bytes = net::encode_frame(in);
  ASSERT_EQ(bytes.size(), net::kHeaderBytes + in.payload.size());

  net::Frame out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::decode_frame(bytes, out, consumed), net::FrameError::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(Wire, EmptyPayloadRoundTrips) {
  net::Frame in;
  in.kind = static_cast<std::uint16_t>(net::MsgKind::kStats);
  in.request_id = 7;
  const auto bytes = net::encode_frame(in);
  ASSERT_EQ(bytes.size(), net::kHeaderBytes);

  net::Frame out;
  std::size_t consumed = 0;
  ASSERT_EQ(net::decode_frame(bytes, out, consumed), net::FrameError::kOk);
  EXPECT_TRUE(out.payload.empty());
}

TEST(Wire, MagicBytesSpellHMMP) {
  const auto bytes = net::encode_frame(sample_frame());
  EXPECT_EQ(bytes[0], 'H');
  EXPECT_EQ(bytes[1], 'M');
  EXPECT_EQ(bytes[2], 'M');
  EXPECT_EQ(bytes[3], 'P');
}

TEST(Wire, ShortHeaderIsRejectedWithoutTouchingOutputs) {
  const auto bytes = net::encode_frame(sample_frame());
  net::Frame out;
  out.request_id = 99;  // sentinel: must survive a failed decode
  std::size_t consumed = 123;
  const std::span<const std::uint8_t> head(bytes.data(), net::kHeaderBytes - 1);
  EXPECT_EQ(net::decode_frame(head, out, consumed), net::FrameError::kShortHeader);
  EXPECT_EQ(out.request_id, 99u);
  EXPECT_EQ(consumed, 123u);
}

TEST(Wire, BadMagicIsRejected) {
  auto bytes = net::encode_frame(sample_frame());
  bytes[0] ^= 0xff;
  net::Frame out;
  std::size_t consumed = 0;
  EXPECT_EQ(net::decode_frame(bytes, out, consumed), net::FrameError::kBadMagic);
}

TEST(Wire, UnknownVersionIsRejected) {
  auto bytes = net::encode_frame(sample_frame());
  bytes[4] = 0x7f;  // version lives at offset 4, LE
  net::Frame out;
  std::size_t consumed = 0;
  EXPECT_EQ(net::decode_frame(bytes, out, consumed), net::FrameError::kBadVersion);
}

TEST(Wire, PayloadOverBudgetIsRejectedBeforeRead) {
  const net::Frame in = sample_frame();
  const auto bytes = net::encode_frame(in);
  net::Frame out;
  std::size_t consumed = 0;
  const auto budget = static_cast<std::uint32_t>(in.payload.size() - 1);
  EXPECT_EQ(net::decode_frame(bytes, out, consumed, budget), net::FrameError::kOversized);
}

TEST(Wire, TruncatedPayloadIsRejected) {
  const auto bytes = net::encode_frame(sample_frame());
  net::Frame out;
  std::size_t consumed = 0;
  const std::span<const std::uint8_t> torn(bytes.data(), bytes.size() - 1);
  EXPECT_EQ(net::decode_frame(torn, out, consumed), net::FrameError::kShortPayload);
}

TEST(Wire, CorruptPayloadFailsChecksum) {
  auto bytes = net::encode_frame(sample_frame());
  bytes[net::kHeaderBytes + 2] ^= 0x01;  // flip one payload bit
  net::Frame out;
  std::size_t consumed = 0;
  EXPECT_EQ(net::decode_frame(bytes, out, consumed), net::FrameError::kBadChecksum);
}

TEST(Wire, FrameErrorNamesAreStable) {
  EXPECT_EQ(net::to_string(net::FrameError::kOk), "ok");
  EXPECT_EQ(net::to_string(net::FrameError::kBadMagic), "bad magic");
  EXPECT_EQ(net::to_string(net::FrameError::kBadChecksum), "payload checksum mismatch");
}

TEST(Wire, ByteWriterIsLittleEndian) {
  net::ByteWriter w;
  w.put_u32(0x01020304u);
  w.put_u16(0xa0b0u);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[1], 0x03);
  EXPECT_EQ(b[2], 0x02);
  EXPECT_EQ(b[3], 0x01);
  EXPECT_EQ(b[4], 0xb0);
  EXPECT_EQ(b[5], 0xa0);
}

TEST(Wire, ByteReaderNeverOverReads) {
  const std::uint8_t raw[] = {0x01, 0x02};
  net::ByteReader r({raw, 2});
  std::uint32_t word = 0xcafef00d;
  EXPECT_FALSE(r.get_u32(word));       // only 2 bytes available
  EXPECT_EQ(word, 0xcafef00du);        // output untouched on failure
  std::uint16_t half = 0;
  EXPECT_TRUE(r.get_u16(half));
  EXPECT_EQ(half, 0x0201u);
  EXPECT_TRUE(r.exhausted());
  std::uint8_t byte = 0;
  EXPECT_FALSE(r.get_u8(byte));
}

TEST(Wire, WriterReaderRoundTripAllWidths) {
  net::ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefull);
  w.put_string("hmm");

  net::ByteReader r(w.bytes());
  std::uint8_t u8 = 0;
  std::uint16_t u16 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  ASSERT_TRUE(r.get_u8(u8));
  ASSERT_TRUE(r.get_u16(u16));
  ASSERT_TRUE(r.get_u32(u32));
  ASSERT_TRUE(r.get_u64(u64));
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(r.rest_as_string(), "hmm");
  EXPECT_TRUE(r.exhausted());
}

// ------------------------------------------------------------ protocol

TEST(NetProtocol, StatusToWireIsABijection) {
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted,
      StatusCode::kPlanBuildFailed,  StatusCode::kCancelled,
      StatusCode::kUnavailable,
  };
  std::vector<std::uint32_t> images;
  for (StatusCode code : codes) {
    const net::WireError wire = net::to_wire(code);
    EXPECT_EQ(net::from_wire(static_cast<std::uint32_t>(wire)), code);
    images.push_back(static_cast<std::uint32_t>(wire));
  }
  std::sort(images.begin(), images.end());
  EXPECT_TRUE(std::adjacent_find(images.begin(), images.end()) == images.end())
      << "two StatusCodes share a wire code";
}

TEST(NetProtocol, ResourceExhaustedTravelsAsRetryLater) {
  EXPECT_EQ(net::to_wire(StatusCode::kResourceExhausted), net::WireError::kRetryLater);
  EXPECT_EQ(net::to_string(net::WireError::kRetryLater), "RETRY_LATER");
}

TEST(NetProtocol, UnknownWireCodeDecodesAsUnavailable) {
  EXPECT_EQ(net::from_wire(0xdeadu), StatusCode::kUnavailable);
}

TEST(NetProtocol, RequestKindsAreRecognized) {
  EXPECT_TRUE(net::is_request_kind(static_cast<std::uint16_t>(net::MsgKind::kPing)));
  EXPECT_TRUE(net::is_request_kind(static_cast<std::uint16_t>(net::MsgKind::kPermute)));
  EXPECT_FALSE(net::is_request_kind(static_cast<std::uint16_t>(net::MsgKind::kPingOk)));
  EXPECT_FALSE(net::is_request_kind(static_cast<std::uint16_t>(net::MsgKind::kError)));
  EXPECT_FALSE(net::is_request_kind(0x0000));
}

TEST(NetProtocol, SubmitPlanRoundTrips) {
  net::SubmitPlanRequest in;
  in.mapping = {3, 1, 0, 2};
  const auto payload = in.encode();
  auto out = net::SubmitPlanRequest::decode(payload, 16);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_EQ(out.value().mapping, in.mapping);
}

TEST(NetProtocol, SubmitPlanRejectsMalformedPayloads) {
  net::SubmitPlanRequest in;
  in.mapping = {3, 1, 0, 2};
  const auto payload = in.encode();

  // Truncated: count promises more words than the payload carries.
  const std::span<const std::uint8_t> torn(payload.data(), payload.size() - 2);
  EXPECT_FALSE(net::SubmitPlanRequest::decode(torn, 16).ok());

  // Trailing garbage after the mapping.
  auto padded = payload;
  padded.push_back(0x00);
  EXPECT_FALSE(net::SubmitPlanRequest::decode(padded, 16).ok());

  // Count above the receiver's element budget.
  EXPECT_EQ(net::SubmitPlanRequest::decode(payload, 3).status().code(),
            StatusCode::kInvalidArgument);

  // Empty mapping.
  net::SubmitPlanRequest empty;
  EXPECT_FALSE(net::SubmitPlanRequest::decode(empty.encode(), 16).ok());
}

TEST(NetProtocol, PermuteRequestRoundTrips) {
  net::PermuteRequest in;
  in.plan_id = 0xfeedfacecafebeefull;
  in.deadline_ms = 250;
  in.data = {10, 20, 30, 40, 50, 60, 70, 80};
  const auto payload = in.encode();
  auto out = net::PermuteRequest::decode(payload, 64);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_EQ(out.value().plan_id, in.plan_id);
  EXPECT_EQ(out.value().deadline_ms, in.deadline_ms);
  EXPECT_EQ(out.value().data, in.data);
}

TEST(NetProtocol, PermuteRequestRejectsForeignElementWidth) {
  net::PermuteRequest in;
  in.plan_id = 1;
  in.data = {1, 2};
  auto payload = in.encode();
  // elem_bytes sits after plan_id (8) + deadline_ms (4), as a u32 LE.
  payload[12] = 8;
  const auto out = net::PermuteRequest::decode(payload, 64);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetProtocol, PermuteResponseRoundTrips) {
  net::PermuteResponse in;
  in.data = {5, 4, 3, 2, 1};
  auto out = net::PermuteResponse::decode(in.encode(), 8);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().data, in.data);
}

TEST(NetProtocol, ErrorResponseRoundTripsAndMapsToStatus) {
  net::ErrorResponse in;
  in.code = static_cast<std::uint32_t>(net::WireError::kDeadlineExceeded);
  in.message = "queued past the request deadline";
  auto out = net::ErrorResponse::decode(in.encode());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().code, in.code);
  EXPECT_EQ(out.value().message, in.message);
  const Status s = out.value().to_status();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.to_string().find(in.message), std::string::npos);
}

// Regression (PR 4): the client used to cast deadline.count() straight
// to uint32_t, so values >= 2^32 ms wrapped around. The clamp saturates
// instead.
TEST(NetProtocol, ClampDeadlineSaturatesInsteadOfWrapping) {
  using std::chrono::milliseconds;
  constexpr std::uint32_t kMax = std::numeric_limits<std::uint32_t>::max();
  EXPECT_EQ(net::PermuteRequest::clamp_deadline(milliseconds(-5)), 0u);
  EXPECT_EQ(net::PermuteRequest::clamp_deadline(milliseconds(0)), 0u);
  EXPECT_EQ(net::PermuteRequest::clamp_deadline(milliseconds(1)), 1u);
  EXPECT_EQ(net::PermuteRequest::clamp_deadline(milliseconds(kMax) - milliseconds(1)),
            kMax - 1);
  EXPECT_EQ(net::PermuteRequest::clamp_deadline(milliseconds(kMax)), kMax);
  // 2^32 + 1 ms used to wrap to 1 ms — the bug this clamp exists for.
  EXPECT_EQ(net::PermuteRequest::clamp_deadline(milliseconds((std::int64_t{1} << 32) + 1)),
            kMax);
  EXPECT_EQ(net::PermuteRequest::clamp_deadline(milliseconds(std::int64_t{1} << 40)), kMax);
}

TEST(NetProtocol, MakeErrorFrameCarriesTypedStatus) {
  const Status cause(StatusCode::kResourceExhausted, "admission bound reached");
  const net::Frame frame = net::make_error_frame(42, cause);
  EXPECT_EQ(frame.kind, static_cast<std::uint16_t>(net::MsgKind::kError));
  EXPECT_EQ(frame.request_id, 42u);
  auto decoded = net::ErrorResponse::decode(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().to_status().code(), StatusCode::kResourceExhausted);
}

// ------------------------------------------------------------ loopback

/// One in-process server over a fresh RobustPermuteService, bound to an
/// ephemeral loopback port.
struct Loopback {
  runtime::RobustPermuteService service;
  net::Server server;

  explicit Loopback(runtime::RobustPermuteService::Config service_config =
                        runtime::RobustPermuteService::Config{},
                    net::Server::Config server_config = net::Server::Config{})
      : service(util::ThreadPool::global(), service_config),
        server(service, std::move(server_config)) {
    const Status started = server.start();
    EXPECT_TRUE(started.is_ok()) << started.to_string();
  }

  [[nodiscard]] net::Client::Config client_config() const {
    net::Client::Config c;
    c.host = "127.0.0.1";
    c.port = server.port();
    c.connect_timeout = 2'000ms;
    c.io_timeout = 10'000ms;
    return c;
  }
};

TEST(NetLoopback, PingEchoes) {
  Loopback loop;
  net::Client client(loop.client_config());
  const Status s = client.ping();
  EXPECT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_GE(loop.server.counters().requests_served(), 1u);
}

// Regression (PR 4): `requests_served` used to count ERROR responses
// (and even responses whose write failed) as served requests. The
// split counters attribute each delivered response to exactly one of
// ok/error.
TEST(NetLoopback, CountersSplitOkFromErrorResponses) {
  Loopback loop;
  net::Client client(loop.client_config());
  ASSERT_TRUE(client.ping().is_ok());
  ASSERT_TRUE(client.ping().is_ok());

  // Unknown plan id -> a delivered ERROR frame.
  std::vector<std::uint32_t> a(64, 1), b(64, 0);
  const Status s = client.permute(/*plan_id=*/0xdeadbeef, {a.data(), a.size()},
                                  {b.data(), b.size()});
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);

  const net::Server::Counters counters = loop.server.counters();
  EXPECT_EQ(counters.requests_ok, 2u);
  EXPECT_EQ(counters.requests_error, 1u);
  EXPECT_EQ(counters.requests_served(), 3u);
}

// Regression (PR 4): Client::permute cast deadline.count() straight to
// uint32_t, so a deadline of 2^32+1 ms wrapped to 1 ms and a perfectly
// relaxed request died with DEADLINE_EXCEEDED.
TEST(NetLoopback, HugeDeadlineDoesNotWrapToATinyBudget) {
  Loopback loop;
  net::Client client(loop.client_config());
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::by_name("bit-reversal", n, 1);
  auto plan = client.submit_plan(p);
  ASSERT_TRUE(plan.ok());

  std::vector<std::uint32_t> a(n), b(n, 0), expect(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i);
  p.apply<std::uint32_t>({a.data(), n}, {expect.data(), n});

  const auto huge = std::chrono::milliseconds((std::int64_t{1} << 32) + 1);
  const Status s = client.permute(plan.value(), {a.data(), n}, {b.data(), n}, huge);
  ASSERT_TRUE(s.is_ok()) << "huge deadline wrapped: " << s.to_string();
  EXPECT_EQ(b, expect);
}

TEST(NetLoopback, StatsIncludePhaseBreakdown) {
  Loopback loop;
  net::Client client(loop.client_config());
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::by_name("bit-reversal", n, 1);
  auto plan = client.submit_plan(p);
  ASSERT_TRUE(plan.ok());
  std::vector<std::uint32_t> a(n, 1), b(n, 0);
  ASSERT_TRUE(client.permute(plan.value(), {a.data(), n}, {b.data(), n}).is_ok());

  auto stats = client.stats_json();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_NE(stats.value().find("\"phases\""), std::string::npos);

  const std::vector<runtime::PhaseScrape> phases = runtime::scrape_phases_json(stats.value());
  ASSERT_FALSE(phases.empty());
  const auto count_of = [&phases](std::string_view label) -> std::uint64_t {
    for (const runtime::PhaseScrape& row : phases) {
      if (row.label == label) return row.count;
    }
    return 0;
  };
  // One permute ran end to end: the request-path phases must each have
  // at least one sample in the wire-visible snapshot.
  EXPECT_GE(count_of("admission_wait"), 1u);
  EXPECT_GE(count_of("queue_wait"), 1u);
  EXPECT_GE(count_of("plan_lookup"), 1u);
  EXPECT_GE(count_of("plan_build"), 1u);
  // The serialize span is recorded after the response is written, so
  // the PERMUTE's own serialize sample may postdate this STATS read —
  // but the SUBMIT_PLAN and PERMUTE responses already landed.
  EXPECT_GE(count_of("serialize"), 1u);
}

TEST(NetLoopback, PermuteMatchesLocalApply) {
  Loopback loop;
  net::Client client(loop.client_config());

  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::by_name("bit-reversal", n, 1);
  auto plan = client.submit_plan(p);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();

  std::vector<std::uint32_t> a(n), b(n, 0), expect(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i * 2654435761u);
  p.apply<std::uint32_t>({a.data(), n}, {expect.data(), n});

  const Status s = client.permute(plan.value(), {a.data(), n}, {b.data(), n});
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_EQ(b, expect);
}

TEST(NetLoopback, ResubmittingAPlanDeduplicates) {
  Loopback loop;
  net::Client client(loop.client_config());
  const perm::Permutation p = perm::by_name("shuffle", 512, 3);
  auto first = client.submit_plan(p);
  auto second = client.submit_plan(p);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
  EXPECT_EQ(loop.server.plans(), 1u);
}

TEST(NetLoopback, UnknownPlanIsInvalidArgument) {
  Loopback loop;
  net::Client client(loop.client_config());
  std::vector<std::uint32_t> a(64, 1), b(64, 0);
  const Status s = client.permute(0xdeadbeefull, {a.data(), 64}, {b.data(), 64});
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(NetLoopback, CountMismatchIsInvalidArgument) {
  Loopback loop;
  net::Client client(loop.client_config());
  const std::uint64_t n = 512;
  const perm::Permutation p = perm::by_name("rotation", n, 1);
  auto plan = client.submit_plan(p);
  ASSERT_TRUE(plan.ok());
  std::vector<std::uint32_t> a(n / 2, 1), b(n / 2, 0);
  const Status s = client.permute(plan.value(), {a.data(), n / 2}, {b.data(), n / 2});
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(NetLoopback, NonBijectiveMappingIsRejected) {
  Loopback loop;
  // The typed client only sends valid Permutations; speak raw HMMP to
  // deliver a mapping with a repeated image.
  auto conn = net::tcp_connect("127.0.0.1", loop.server.port(), 2'000ms);
  ASSERT_TRUE(conn.ok()) << conn.status().to_string();
  net::TcpStream stream = std::move(conn).value();

  net::SubmitPlanRequest bad;
  bad.mapping = {0, 1, 2, 2};  // 2 appears twice, 3 never
  net::Frame request;
  request.kind = static_cast<std::uint16_t>(net::MsgKind::kSubmitPlan);
  request.request_id = 9;
  request.payload = bad.encode();
  ASSERT_TRUE(net::write_frame(stream, request).is_ok());

  auto response = net::read_frame(stream, net::kDefaultMaxPayload);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().kind, static_cast<std::uint16_t>(net::MsgKind::kError));
  EXPECT_EQ(response.value().request_id, 9u);
  auto err = net::ErrorResponse::decode(response.value().payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err.value().to_status().code(), StatusCode::kInvalidArgument);
}

TEST(NetLoopback, GarbageBytesGetAnErrorFrameNotAHangup) {
  Loopback loop;
  auto conn = net::tcp_connect("127.0.0.1", loop.server.port(), 2'000ms);
  ASSERT_TRUE(conn.ok());
  net::TcpStream stream = std::move(conn).value();

  // A full header's worth of non-HMMP bytes: the server answers with a
  // best-effort ERROR frame, then closes the connection.
  std::vector<std::uint8_t> junk(net::kHeaderBytes, 0x5a);
  ASSERT_TRUE(stream.send_all(junk.data(), junk.size()).is_ok());

  auto response = net::read_frame(stream, net::kDefaultMaxPayload);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().kind, static_cast<std::uint16_t>(net::MsgKind::kError));
  auto err = net::ErrorResponse::decode(response.value().payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err.value().to_status().code(), StatusCode::kInvalidArgument);

  // The connection is closed afterwards...
  auto next = net::read_frame(stream, net::kDefaultMaxPayload);
  EXPECT_FALSE(next.ok());
  // ...and the process is fine: a fresh connection still serves.
  net::Client client(loop.client_config());
  EXPECT_TRUE(client.ping().is_ok());
  EXPECT_GE(loop.server.counters().protocol_errors, 1u);
}

TEST(NetLoopback, StatsReturnsMetricsJson) {
  Loopback loop;
  net::Client client(loop.client_config());
  auto stats = client.stats_json();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_NE(stats.value().find("\"cache\""), std::string::npos);
  EXPECT_NE(stats.value().find("\"executor\""), std::string::npos);
  EXPECT_NE(stats.value().find("\"phases\""), std::string::npos);
}

TEST(NetLoopback, DeadlineExceededSurfacesTyped) {
  Loopback loop;
  net::Client client(loop.client_config());
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::by_name("bit-reversal", n, 1);
  auto plan = client.submit_plan(p);
  ASSERT_TRUE(plan.ok());

  // Stall every execution 300 ms; a 50 ms budget cannot survive that.
  runtime::FaultInjector::Config faults;
  faults.enabled = true;
  faults.seed = 1;
  faults.rate = 1.0;
  faults.stall_ms = 300;
  faults.sites = std::string(runtime::fault_sites::kExecutorStall);
  runtime::ScopedFaultInjection chaos(faults);

  std::vector<std::uint32_t> a(n, 1), b(n, 0);
  const Status s = client.permute(plan.value(), {a.data(), n}, {b.data(), n}, 50ms);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
}

TEST(NetLoopback, AdmissionRejectSurfacesAsRetryLater) {
  runtime::RobustPermuteService::Config service_config;
  service_config.executor.max_in_flight = 1;
  service_config.executor.admission = runtime::Executor::Admission::kReject;
  Loopback loop(service_config);

  const std::uint64_t n = 4096;
  const perm::Permutation p = perm::by_name("bit-reversal", n, 1);
  net::Client setup(loop.client_config());
  auto plan = setup.submit_plan(p);
  ASSERT_TRUE(plan.ok());

  // Stall the single admitted slot so a concurrent request must bounce.
  runtime::FaultInjector::Config faults;
  faults.enabled = true;
  faults.seed = 1;
  faults.rate = 1.0;
  faults.stall_ms = 500;
  faults.sites = std::string(runtime::fault_sites::kExecutorStall);
  runtime::ScopedFaultInjection chaos(faults);

  std::thread occupant([&] {
    net::Client client(loop.client_config());
    std::vector<std::uint32_t> a(n, 1), b(n, 0);
    // Outcome does not matter; this request exists to hold the slot.
    (void)client.permute(plan.value(), {a.data(), n}, {b.data(), n});
  });

  // Wait until the occupant's request is actually admitted (in flight),
  // then send: with max_in_flight=1 this request must be bounced.
  bool occupied = false;
  for (int spin = 0; spin < 400 && !occupied; ++spin) {
    occupied = loop.service.executor().in_flight() > 0;
    if (!occupied) std::this_thread::sleep_for(5ms);
  }
  ASSERT_TRUE(occupied) << "occupant request never reached the executor";

  net::Client client(loop.client_config());
  std::vector<std::uint32_t> a(n, 1), b(n, 0);
  const Status s = client.permute(plan.value(), {a.data(), n}, {b.data(), n});
  occupant.join();
  ASSERT_FALSE(s.is_ok()) << "request admitted past a full admission bound";
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted)
      << "expected RETRY_LATER, got " << s.to_string();
}

TEST(NetLoopback, GracefulStopAnswersTheInFlightRequest) {
  auto loop = std::make_unique<Loopback>();
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::by_name("bit-reversal", n, 1);
  net::Client client(loop->client_config());
  auto plan = client.submit_plan(p);
  ASSERT_TRUE(plan.ok());

  // Stretch the request so stop() overlaps it.
  runtime::FaultInjector::Config faults;
  faults.enabled = true;
  faults.seed = 1;
  faults.rate = 1.0;
  faults.stall_ms = 200;
  faults.sites = std::string(runtime::fault_sites::kExecutorStall);
  runtime::ScopedFaultInjection chaos(faults);

  std::vector<std::uint32_t> a(n), b(n, 0), expect(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i);
  p.apply<std::uint32_t>({a.data(), n}, {expect.data(), n});

  Status result(StatusCode::kUnavailable, "not run");
  std::thread request([&] {
    result = client.permute(plan.value(), {a.data(), n}, {b.data(), n});
  });
  std::this_thread::sleep_for(50ms);  // let the request reach the executor
  loop->server.stop();                // must drain, not drop
  request.join();

  EXPECT_TRUE(result.is_ok()) << result.to_string();
  EXPECT_EQ(b, expect);
  EXPECT_FALSE(loop->server.running());
}

// ------------------------------------------------------- client backoff

TEST(NetClient, RetryBackoffGrowsAndSaturatesAtTheCap) {
  net::Client::Config config;
  config.retry_backoff_base = 20ms;
  config.retry_backoff_cap = 160ms;

  // Attempt 0 is the initial try — never delayed.
  EXPECT_EQ(net::Client::retry_backoff(config, 0).count(), 0);

  for (int attempt = 1; attempt <= 24; ++attempt) {
    const auto delay = net::Client::retry_backoff(config, attempt);
    const auto base_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             config.retry_backoff_base)
                             .count();
    const auto cap_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            config.retry_backoff_cap)
                            .count();
    const std::int64_t raw =
        std::min(base_us << std::min(attempt - 1, 20), cap_us);
    // Jitter lives in [0, raw): total in [raw, 2*raw).
    EXPECT_GE(delay.count(), raw) << "attempt " << attempt;
    EXPECT_LT(delay.count(), 2 * raw) << "attempt " << attempt;
    // Determinism: same config + attempt -> same pause (chaos replay).
    EXPECT_EQ(delay.count(), net::Client::retry_backoff(config, attempt).count());
  }

  // Disabled backoff keeps the legacy immediate-retry behaviour.
  net::Client::Config off = config;
  off.retry_backoff_base = 0ms;
  EXPECT_EQ(net::Client::retry_backoff(off, 5).count(), 0);
}

// Regression (PR 4): retries used to reconnect in a hot zero-delay
// loop. Against a dead port (connect fails instantly with
// ECONNREFUSED) the retries must now consume at least the scheduled
// backoff time.
TEST(NetClient, RetriesAgainstDeadPortPaceThemselves) {
  // Grab an ephemeral port, then close the listener so connects are
  // refused immediately.
  auto listener = net::TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().to_string();
  const std::uint16_t dead_port = listener.value().port();
  listener.value().close();

  net::Client::Config config;
  config.host = "127.0.0.1";
  config.port = dead_port;
  config.connect_timeout = 250ms;
  config.max_retries = 2;
  config.retry_backoff_base = 30ms;
  config.retry_backoff_cap = 120ms;
  net::Client client(config);

  std::chrono::microseconds scheduled{0};
  for (int attempt = 1; attempt <= config.max_retries; ++attempt) {
    scheduled += net::Client::retry_backoff(config, attempt);
  }
  ASSERT_GT(scheduled.count(), 0);

  const auto started = std::chrono::steady_clock::now();
  const Status s = client.ping();
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_FALSE(s.is_ok());
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count(),
            scheduled.count());
}

TEST(NetLoopback, ClientReconnectsAfterClose) {
  Loopback loop;
  net::Client client(loop.client_config());
  ASSERT_TRUE(client.ping().is_ok());
  client.close();
  EXPECT_FALSE(client.connected());
  // The next request reconnects lazily.
  EXPECT_TRUE(client.ping().is_ok());
  EXPECT_TRUE(client.connected());
}

TEST(NetLoopback, IdleConnectionsAreClosedAndCounted) {
  net::Server::Config server_config;
  server_config.idle_timeout = 100ms;
  server_config.poll_interval = 10ms;
  Loopback loop({}, server_config);

  // A slow-loris peer: connects, sends nothing, holds a slot.
  auto conn = net::tcp_connect("127.0.0.1", loop.server.port(), 2'000ms);
  ASSERT_TRUE(conn.ok()) << conn.status().to_string();
  net::TcpStream idle = std::move(conn).value();
  ASSERT_TRUE(idle.set_io_timeout(5'000ms, 5'000ms).is_ok());

  // The server closes it quietly (no ERROR frame): the read sees EOF.
  auto got = net::read_frame(idle, net::kDefaultMaxPayload);
  EXPECT_FALSE(got.ok());
  EXPECT_GE(loop.server.counters().idle_closed, 1u);

  // An active connection is unaffected: requests reset the idle clock.
  net::Client client(loop.client_config());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(client.ping().is_ok());
    std::this_thread::sleep_for(40ms);
  }
  EXPECT_TRUE(client.connected());
}

// Regression: the server's pre-frame connection-cap rejection is an
// ERROR frame addressed to request id 0. The client used to classify
// it as "response id does not match the request" (UNAVAILABLE) — a
// protocol violation — instead of the typed RETRY_LATER it is.
TEST(NetLoopback, ConnectionCapRejectionSurfacesTypedRetryLater) {
  net::Server::Config server_config;
  server_config.max_connections = 1;
  Loopback loop({}, server_config);

  // Occupy the only slot, and prove it is held by completing a request.
  auto conn = net::tcp_connect("127.0.0.1", loop.server.port(), 2'000ms);
  ASSERT_TRUE(conn.ok()) << conn.status().to_string();
  net::TcpStream occupant = std::move(conn).value();
  net::Frame ping;
  ping.kind = static_cast<std::uint16_t>(net::MsgKind::kPing);
  ping.request_id = 1;
  ping.payload = {'h', 'i'};
  ASSERT_TRUE(net::write_frame(occupant, ping).is_ok());
  ASSERT_TRUE(net::read_frame(occupant, net::kDefaultMaxPayload).ok());

  net::Client::Config config = loop.client_config();
  config.max_retries = 0;  // surface the first answer, no backoff loop
  net::Client client(config);
  const Status s = client.ping();
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted)
      << "expected typed RETRY_LATER, got " << s.to_string();
  EXPECT_GE(loop.server.counters().connections_rejected, 1u);
}

TEST(NetLoopback, ServerStartStopIsIdempotent) {
  Loopback loop;
  loop.server.stop();
  loop.server.stop();  // second stop is a no-op
  EXPECT_FALSE(loop.server.running());
}

// ------------------------------------------------------ zero-copy wire

TEST(WireZeroCopy, ChecksumExtendMatchesChecksumOverConcatenation) {
  std::vector<std::uint8_t> bytes(301);
  for (std::size_t i = 0; i < bytes.size(); ++i) bytes[i] = static_cast<std::uint8_t>(i * 7 + 3);
  const std::uint64_t whole = net::checksum_bytes(bytes);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{17}, bytes.size()}) {
    std::uint64_t state = net::checksum_seed();
    state = net::checksum_extend(state, std::span<const std::uint8_t>(bytes).first(split));
    state = net::checksum_extend(state, std::span<const std::uint8_t>(bytes).subspan(split));
    EXPECT_EQ(state, whole) << "split at " << split;
  }
  // Three-way split, including an empty middle part.
  std::uint64_t state = net::checksum_seed();
  state = net::checksum_extend(state, std::span<const std::uint8_t>(bytes).first(100));
  state = net::checksum_extend(state, std::span<const std::uint8_t>(bytes).subspan(100, 0));
  state = net::checksum_extend(state, std::span<const std::uint8_t>(bytes).subspan(100));
  EXPECT_EQ(state, whole);
}

TEST(WireZeroCopy, WriteFramePartsRoundTripsThroughReadFrame) {
  auto bound = net::TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(bound.ok()) << bound.status().to_string();
  net::TcpListener listener = std::move(bound).value();
  auto connecting = net::tcp_connect("127.0.0.1", listener.port(), 2'000ms);
  ASSERT_TRUE(connecting.ok());
  net::TcpStream sender = std::move(connecting).value();
  auto accepted = listener.accept(2'000ms);
  ASSERT_TRUE(accepted.ok());
  net::TcpStream receiver = std::move(accepted).value();

  // A payload scattered across three non-contiguous parts (one empty):
  // the receiver must see one contiguous checksum-valid frame.
  const std::vector<std::uint8_t> head = {0x01, 0x02, 0x03};
  const std::vector<std::uint32_t> elems = {0xdeadbeefu, 0x01020304u, 0x0badf00du};
  const net::ConstBuffer parts[] = {
      {head.data(), head.size()},
      {nullptr, 0},
      {elems.data(), elems.size() * sizeof(std::uint32_t)},
  };
  const Status sent = net::write_frame_parts(
      sender, static_cast<std::uint16_t>(net::MsgKind::kPing), 77, parts);
  ASSERT_TRUE(sent.is_ok()) << sent.to_string();

  auto got = net::read_frame(receiver);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_EQ(got.value().kind, static_cast<std::uint16_t>(net::MsgKind::kPing));
  EXPECT_EQ(got.value().request_id, 77u);
  ASSERT_EQ(got.value().payload.size(), head.size() + elems.size() * sizeof(std::uint32_t));
  EXPECT_EQ(0, std::memcmp(got.value().payload.data(), head.data(), head.size()));
  EXPECT_EQ(0, std::memcmp(got.value().payload.data() + head.size(), elems.data(),
                           elems.size() * sizeof(std::uint32_t)));
}

TEST(WireZeroCopy, ReadFrameViewReusesPooledStorageAcrossFrames) {
  auto bound = net::TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(bound.ok());
  net::TcpListener listener = std::move(bound).value();
  auto connecting = net::tcp_connect("127.0.0.1", listener.port(), 2'000ms);
  ASSERT_TRUE(connecting.ok());
  net::TcpStream sender = std::move(connecting).value();
  auto accepted = listener.accept(2'000ms);
  ASSERT_TRUE(accepted.ok());
  net::TcpStream receiver = std::move(accepted).value();

  util::BufferPool pool;
  util::PooledBuffer storage;
  net::Frame f = sample_frame();
  const std::uint8_t* storage_data = nullptr;
  for (int i = 0; i < 5; ++i) {
    f.request_id = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(net::write_frame(sender, f).is_ok());
    auto view = net::read_frame_view(receiver, pool, storage);
    ASSERT_TRUE(view.ok()) << view.status().to_string();
    EXPECT_EQ(view.value().request_id, static_cast<std::uint64_t>(i));
    ASSERT_EQ(view.value().payload.size(), f.payload.size());
    EXPECT_EQ(0, std::memcmp(view.value().payload.data(), f.payload.data(), f.payload.size()));
    if (i == 0) {
      storage_data = storage.data();
    } else {
      // Same-size frames: the storage block must be reused, not
      // reacquired (the steady-state zero-allocation property).
      EXPECT_EQ(storage.data(), storage_data);
    }
  }
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(WireZeroCopy, PermuteRequestViewMatchesOwningDecode) {
  net::PermuteRequest request;
  request.plan_id = 0x1122334455667788ull;
  request.deadline_ms = 250;
  request.data = {5, 4, 3, 2, 1, 0, 9, 8};
  const std::vector<std::uint8_t> payload = request.encode();

  auto owning = net::PermuteRequest::decode(payload, 1 << 20);
  ASSERT_TRUE(owning.ok());
  auto view = net::PermuteRequestView::decode(payload, 1 << 20);
  ASSERT_TRUE(view.ok()) << view.status().to_string();
  EXPECT_EQ(view.value().plan_id, owning.value().plan_id);
  EXPECT_EQ(view.value().deadline_ms, owning.value().deadline_ms);
  ASSERT_EQ(view.value().data.count, owning.value().data.size());

  std::vector<std::uint32_t> copied(view.value().data.count);
  view.value().data.copy_to({copied.data(), copied.size()});
  EXPECT_EQ(copied, owning.value().data);

  const std::span<const std::uint32_t> in_place = view.value().data.in_place();
  if (!in_place.empty()) {
    // Borrowed, not copied: the span must point into the payload bytes.
    EXPECT_EQ(static_cast<const void*>(in_place.data()),
              static_cast<const void*>(view.value().data.bytes.data()));
    EXPECT_TRUE(std::equal(in_place.begin(), in_place.end(), copied.begin()));
  }
}

TEST(WireZeroCopy, ViewDecodersRejectMalformedPayloadsLikeOwningOnes) {
  net::PermuteRequest request;
  request.plan_id = 9;
  request.data = {1, 2, 3, 4};
  const std::vector<std::uint8_t> payload = request.encode();

  // Truncated element region, truncated header, over-budget count.
  for (std::size_t cut : {payload.size() - 1, std::size_t{5}}) {
    const std::span<const std::uint8_t> bad(payload.data(), cut);
    EXPECT_FALSE(net::PermuteRequestView::decode(bad, 1 << 20).ok()) << "cut=" << cut;
    EXPECT_FALSE(net::PermuteRequest::decode(bad, 1 << 20).ok()) << "cut=" << cut;
  }
  EXPECT_FALSE(net::PermuteRequestView::decode(payload, 2).ok());

  net::SubmitPlanRequest plan_request;
  plan_request.mapping = {1, 0, 3, 2};
  const std::vector<std::uint8_t> plan_payload = plan_request.encode();
  EXPECT_TRUE(net::SubmitPlanRequestView::decode(plan_payload, 1 << 20).ok());
  EXPECT_FALSE(
      net::SubmitPlanRequestView::decode(
          std::span<const std::uint8_t>(plan_payload.data(), plan_payload.size() - 2), 1 << 20)
          .ok());
  EXPECT_FALSE(net::SubmitPlanRequestView::decode(plan_payload, 2).ok());
}

TEST(WireZeroCopy, PermuteResponseDecodeIntoMatchesDecode) {
  net::PermuteResponse response;
  response.data = {10, 20, 30, 40, 50};
  const std::vector<std::uint8_t> payload = response.encode();

  auto owning = net::PermuteResponse::decode(payload, 1 << 20);
  ASSERT_TRUE(owning.ok());
  std::vector<std::uint32_t> out(5);
  ASSERT_TRUE(net::PermuteResponse::decode_into(payload, {out.data(), out.size()}).is_ok());
  EXPECT_EQ(out, owning.value().data);

  // Count mismatch with the caller's buffer is an error, not a resize.
  std::vector<std::uint32_t> wrong(4);
  EXPECT_FALSE(net::PermuteResponse::decode_into(payload, {wrong.data(), wrong.size()}).is_ok());
}

TEST(WireZeroCopy, MakeOkFrameMovesThePayload) {
  std::vector<std::uint8_t> payload(1024, 0xab);
  const std::uint8_t* bytes = payload.data();
  const net::Frame frame =
      net::make_ok_frame(7, net::MsgKind::kPermuteOk, std::move(payload));
  // Moved, not copied: the frame owns the very same allocation.
  EXPECT_EQ(frame.payload.data(), bytes);
  EXPECT_EQ(frame.request_id, 7u);
}

// ------------------------------------------------- hot-path loopback

TEST(NetLoopback, SteadyStatePermuteIsPoolMissFree) {
  // The wire-level zero-allocation acceptance check: after warmup, 100
  // PERMUTEs over one connection must never miss the buffer pool — the
  // request payload, response elements, and executor scratch all come
  // from warmed size classes.
  const std::uint64_t n = 1 << 13;
  Loopback loop;
  net::Client client(loop.client_config());
  const perm::Permutation p = perm::bit_reversal(n);
  auto plan = client.submit_plan(p);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();

  std::vector<std::uint32_t> a(n), b(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i ^ 0x55);
  for (int r = 0; r < 8; ++r) {  // warmup
    ASSERT_TRUE(client.permute(plan.value(), {a.data(), n}, {b.data(), n}).is_ok());
  }
  const std::uint64_t misses_before = loop.service.metrics().snapshot().pool_misses;
  for (int r = 0; r < 100; ++r) {
    ASSERT_TRUE(client.permute(plan.value(), {a.data(), n}, {b.data(), n}).is_ok());
  }
  EXPECT_EQ(loop.service.metrics().snapshot().pool_misses, misses_before);
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(b[p(i)], a[i]);
}

TEST(NetLoopback, BatchedServerMatchesLocalApplyAndExecutesBatches) {
  // Four concurrent clients against a batching server: the gather
  // window is generous, so the four requests coalesce into fused
  // sweeps; outputs must still match the local apply per client.
  const std::uint64_t n = 1 << 13;
  runtime::RobustPermuteService::Config config;
  config.executor.batch.max_batch = 4;
  config.executor.batch.max_delay = std::chrono::milliseconds(500);
  Loopback loop(config);
  const perm::Permutation p = perm::bit_reversal(n);

  std::uint64_t plan_id = 0;
  {
    net::Client setup(loop.client_config());
    auto plan = setup.submit_plan(p);
    ASSERT_TRUE(plan.ok()) << plan.status().to_string();
    plan_id = plan.value();
  }

  constexpr int kClients = 4;
  constexpr int kRounds = 3;
  std::vector<Status> outcomes(kClients, Status::ok());
  std::vector<std::vector<std::uint32_t>> inputs(kClients), outputs(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    inputs[c].resize(n);
    outputs[c].resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      inputs[c][i] = static_cast<std::uint32_t>(i * (c + 1));
    }
    clients.emplace_back([&, c] {
      net::Client client(loop.client_config());
      for (int r = 0; r < kRounds; ++r) {
        const Status s = client.permute(plan_id, {inputs[c].data(), n}, {outputs[c].data(), n});
        if (!s.is_ok()) {
          outcomes[c] = s;
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(outcomes[c].is_ok()) << "client " << c << ": " << outcomes[c].to_string();
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(outputs[c][p(i)], inputs[c][i]) << "client " << c << " diverged at " << i;
    }
  }
  EXPECT_GE(loop.service.metrics().snapshot().batches_executed, 1u);
}

// --------------------------------------------- reactor connection scale

/// Raise the process fd soft limit so the high-connection tests can run
/// (each loopback connection costs two fds). Returns false when even the
/// hard limit cannot carry `want`.
bool raise_fd_limit(rlim_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return false;
  if (lim.rlim_cur >= want) return true;
  if (lim.rlim_max != RLIM_INFINITY && lim.rlim_max < want) return false;
  lim.rlim_cur = want;
  return ::setrlimit(RLIMIT_NOFILE, &lim) == 0;
}

// The tentpole acceptance check at test scale: a thousand idle
// connections cost the reactor a map entry each, not a thread each,
// and a request threaded past all of them is answered promptly.
TEST(NetReactor, ThousandIdleConnectionsAreCarriedAndServed) {
  constexpr std::size_t kIdle = 1000;
  if (!raise_fd_limit(4096)) GTEST_SKIP() << "fd hard limit too low for 1k connections";

  net::Server::Config server_config;
  server_config.max_connections = kIdle + 64;
  Loopback loop({}, server_config);

  std::vector<net::TcpStream> idle;
  idle.reserve(kIdle);
  for (std::size_t i = 0; i < kIdle; ++i) {
    auto conn = net::tcp_connect("127.0.0.1", loop.server.port(), 2'000ms);
    ASSERT_TRUE(conn.ok()) << "connection " << i << ": " << conn.status().to_string();
    idle.push_back(std::move(conn).value());
  }

  // With a thousand idle peers parked on the epoll set, a live client
  // still gets served, and quickly.
  const auto started = std::chrono::steady_clock::now();
  net::Client client(loop.client_config());
  const Status s = client.ping();
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_LT(elapsed, 5s) << "ping stalled behind idle connections";

  // The idle connections are still live too: a late request on one of
  // them is served like any other.
  net::Frame ping;
  ping.kind = static_cast<std::uint16_t>(net::MsgKind::kPing);
  ping.request_id = 42;
  ping.payload = {'u', 'p', '?'};
  for (std::size_t i : {std::size_t{0}, kIdle / 2, kIdle - 1}) {
    ASSERT_TRUE(idle[i].set_io_timeout(5'000ms, 5'000ms).is_ok());
    ASSERT_TRUE(net::write_frame(idle[i], ping).is_ok()) << "connection " << i;
    auto resp = net::read_frame(idle[i], net::kDefaultMaxPayload);
    ASSERT_TRUE(resp.ok()) << "connection " << i << ": " << resp.status().to_string();
    EXPECT_EQ(resp.value().payload, ping.payload);
  }
  EXPECT_GE(loop.server.counters().connections_accepted, kIdle + 1);
}

// Open/close storm: connections that vanish instantly, mid-header, or
// after a served request must all be reaped without wedging the
// reactor or leaking conn slots.
TEST(NetReactor, ConnectionChurnStormLeavesTheServerServing) {
  Loopback loop;
  constexpr int kStorm = 300;
  const std::uint8_t half_header[] = {'H', 'M', 'M', 'P', 0x01, 0x00};
  for (int i = 0; i < kStorm; ++i) {
    auto conn = net::tcp_connect("127.0.0.1", loop.server.port(), 2'000ms);
    ASSERT_TRUE(conn.ok()) << "connection " << i << ": " << conn.status().to_string();
    net::TcpStream stream = std::move(conn).value();
    if (i % 3 == 1) {
      (void)stream.send_all(half_header, sizeof(half_header));  // torn header, then gone
    } else if (i % 3 == 2) {
      net::Frame ping;
      ping.kind = static_cast<std::uint16_t>(net::MsgKind::kPing);
      ping.request_id = static_cast<std::uint64_t>(i);
      ASSERT_TRUE(net::write_frame(stream, ping).is_ok());
      // Close without reading the response: the flush hits a dead peer.
    }
    stream.close();
  }

  // The server is still fully in business afterwards.
  net::Client client(loop.client_config());
  EXPECT_TRUE(client.ping().is_ok());
  EXPECT_GE(loop.server.counters().connections_accepted,
            static_cast<std::uint64_t>(kStorm));
}

// A slow-loris peer that trickles half a header and stalls is closed by
// the io_timeout stall scan — the resumable decoder holds the partial
// header, the reactor's clock bounds how long.
TEST(NetReactor, SlowLorisPartialHeaderIsClosedByIoTimeout) {
  net::Server::Config server_config;
  server_config.io_timeout = 150ms;
  server_config.poll_interval = 10ms;
  Loopback loop({}, server_config);

  auto conn = net::tcp_connect("127.0.0.1", loop.server.port(), 2'000ms);
  ASSERT_TRUE(conn.ok()) << conn.status().to_string();
  net::TcpStream loris = std::move(conn).value();
  ASSERT_TRUE(loris.set_io_timeout(5'000ms, 5'000ms).is_ok());
  const std::uint8_t torn[] = {'H', 'M', 'M', 'P', 0x01, 0x00, 0x01, 0x00, 0x07};
  ASSERT_TRUE(loris.send_all(torn, sizeof(torn)).is_ok());

  // Quiet close (EOF), not an ERROR frame, and well before the 5s
  // blocking-read budget: the stall scan fired.
  const auto started = std::chrono::steady_clock::now();
  auto got = net::read_frame(loris, net::kDefaultMaxPayload);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable) << got.status().to_string();
  EXPECT_LT(elapsed, 3s) << "mid-frame stall outlived io_timeout";
}

// Graceful drain under concurrency: stop() lands while several requests
// are mid-execution; every one of them must still get its full
// response flushed before the reactors exit.
TEST(NetReactor, GracefulDrainFlushesAllInFlightResponses) {
  auto loop = std::make_unique<Loopback>();
  const std::uint64_t n = 1024;
  const perm::Permutation p = perm::by_name("bit-reversal", n, 1);
  std::uint64_t plan_id = 0;
  {
    net::Client setup(loop->client_config());
    auto plan = setup.submit_plan(p);
    ASSERT_TRUE(plan.ok());
    plan_id = plan.value();
  }

  runtime::FaultInjector::Config faults;
  faults.enabled = true;
  faults.seed = 1;
  faults.rate = 1.0;
  faults.stall_ms = 200;
  faults.sites = std::string(runtime::fault_sites::kExecutorStall);
  runtime::ScopedFaultInjection chaos(faults);

  std::vector<std::uint32_t> expect(n);
  constexpr int kInFlight = 4;
  std::vector<std::vector<std::uint32_t>> inputs(kInFlight), outputs(kInFlight);
  std::vector<Status> outcomes(kInFlight, Status(StatusCode::kUnavailable, "not run"));
  std::vector<std::thread> requests;
  requests.reserve(kInFlight);
  for (int c = 0; c < kInFlight; ++c) {
    inputs[c].assign(n, 0);
    outputs[c].assign(n, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
      inputs[c][i] = static_cast<std::uint32_t>(i + static_cast<std::uint64_t>(c) * n);
    }
    requests.emplace_back([&, c] {
      net::Client client(loop->client_config());
      outcomes[c] =
          client.permute(plan_id, {inputs[c].data(), n}, {outputs[c].data(), n});
    });
  }
  std::this_thread::sleep_for(80ms);  // let the requests reach the executor
  loop->server.stop();                // must drain all four, not drop them
  for (std::thread& t : requests) t.join();

  for (int c = 0; c < kInFlight; ++c) {
    ASSERT_TRUE(outcomes[c].is_ok()) << "request " << c << ": " << outcomes[c].to_string();
    p.apply<std::uint32_t>({inputs[c].data(), n}, {expect.data(), n});
    EXPECT_EQ(outputs[c], expect) << "request " << c << " got a torn response";
  }
  EXPECT_FALSE(loop->server.running());
}

// Regression (PR 9): the over-cap RETRY_LATER frame used to be written
// synchronously by the accept thread under the full io_timeout, so one
// hostile over-cap peer could freeze admission for everyone. The frame
// is now flushed by a reactor under reject_write_budget; the accept
// thread never writes.
TEST(NetReactor, CapRejectionIsFlushedOffTheAcceptPath) {
  net::Server::Config server_config;
  server_config.max_connections = 1;
  server_config.io_timeout = 30'000ms;  // the old bug's worst-case stall, per peer
  Loopback loop({}, server_config);

  // Occupy the only slot and prove it serves.
  auto conn = net::tcp_connect("127.0.0.1", loop.server.port(), 2'000ms);
  ASSERT_TRUE(conn.ok()) << conn.status().to_string();
  net::TcpStream occupant = std::move(conn).value();
  ASSERT_TRUE(occupant.set_io_timeout(5'000ms, 5'000ms).is_ok());
  net::Frame ping;
  ping.kind = static_cast<std::uint16_t>(net::MsgKind::kPing);
  ping.request_id = 1;
  ASSERT_TRUE(net::write_frame(occupant, ping).is_ok());
  ASSERT_TRUE(net::read_frame(occupant, net::kDefaultMaxPayload).ok());

  // Hostile over-cap peers: connect and never read a byte. Under the
  // old code each would have parked the accept thread in a blocking
  // write with the whole io_timeout as budget.
  std::vector<net::TcpStream> hostile;
  for (int i = 0; i < 3; ++i) {
    auto h = net::tcp_connect("127.0.0.1", loop.server.port(), 2'000ms);
    ASSERT_TRUE(h.ok()) << h.status().to_string();
    hostile.push_back(std::move(h).value());
  }

  // A polite over-cap client right behind them must still get its typed
  // rejection promptly — the accept path cannot be head-of-line blocked.
  const auto started = std::chrono::steady_clock::now();
  net::Client::Config config = loop.client_config();
  config.max_retries = 0;
  net::Client late(config);
  const Status s = late.ping();
  const auto elapsed = std::chrono::steady_clock::now() - started;
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted)
      << "expected typed RETRY_LATER, got " << s.to_string();
  EXPECT_LT(elapsed, 2s) << "rejection was head-of-line blocked behind hostile peers";
  EXPECT_GE(loop.server.counters().connections_rejected, 4u);

  // And the occupant, who owns the one real slot, is unaffected.
  ASSERT_TRUE(net::write_frame(occupant, ping).is_ok());
  EXPECT_TRUE(net::read_frame(occupant, net::kDefaultMaxPayload).ok());
}

// Regression (PR 9): a peer spraying SHARD_XCHG blocks at sessions that
// never materialize used to pin each block's pooled payload for the
// full exchange timeout with no bound. The holds now run under
// max_shard_hold_bytes: excess blocks answer typed RETRY_LATER, and
// every pinned byte is released once the waits resolve.
TEST(NetReactor, EarlyArrivalShardHoldsAreBoundedAndReleased) {
  const std::uint64_t baseline = util::BufferPool::global().stats().outstanding_bytes;

  net::Server::Config server_config;
  server_config.shard_exchange_timeout = 300ms;
  server_config.poll_interval = 10ms;
  server_config.max_shard_hold_bytes = 4096;  // fits one 3KiB block, not two
  {
    Loopback loop({}, server_config);

    net::ShardXchgRequest xchg;
    xchg.round = 1;
    xchg.src_shard = 0;
    xchg.block.assign(768, 7);  // 3072 payload bytes

    // First orphan block: admitted under the hold budget, parks waiting
    // for a session that will never exist.
    xchg.session_id = 0xfeed0001;
    auto first = net::tcp_connect("127.0.0.1", loop.server.port(), 2'000ms);
    ASSERT_TRUE(first.ok()) << first.status().to_string();
    net::TcpStream parked = std::move(first).value();
    ASSERT_TRUE(parked.set_io_timeout(5'000ms, 5'000ms).is_ok());
    net::Frame frame;
    frame.kind = static_cast<std::uint16_t>(net::MsgKind::kShardXchg);
    frame.request_id = 1;
    frame.payload = xchg.encode();
    ASSERT_TRUE(net::write_frame(parked, frame).is_ok());
    std::this_thread::sleep_for(50ms);  // let it reach the await

    // Second orphan block: over the hold budget -> immediate typed
    // RETRY_LATER, not a second pinned payload.
    xchg.session_id = 0xfeed0002;
    auto second = net::tcp_connect("127.0.0.1", loop.server.port(), 2'000ms);
    ASSERT_TRUE(second.ok()) << second.status().to_string();
    net::TcpStream rejected = std::move(second).value();
    ASSERT_TRUE(rejected.set_io_timeout(5'000ms, 5'000ms).is_ok());
    frame.request_id = 2;
    frame.payload = xchg.encode();
    const auto started = std::chrono::steady_clock::now();
    ASSERT_TRUE(net::write_frame(rejected, frame).is_ok());
    auto bounced = net::read_frame(rejected, net::kDefaultMaxPayload);
    const auto elapsed = std::chrono::steady_clock::now() - started;
    ASSERT_TRUE(bounced.ok()) << bounced.status().to_string();
    ASSERT_EQ(static_cast<net::MsgKind>(bounced.value().kind), net::MsgKind::kError);
    auto err = net::ErrorResponse::decode(bounced.value().payload);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err.value().to_status().code(), StatusCode::kResourceExhausted)
        << err.value().to_status().to_string();
    EXPECT_LT(elapsed, 2s) << "over-budget hold waited instead of bouncing";

    // The parked block resolves typed (no such session) once the
    // exchange timeout passes, releasing its hold.
    auto resolved = net::read_frame(parked, net::kDefaultMaxPayload);
    ASSERT_TRUE(resolved.ok()) << resolved.status().to_string();
    ASSERT_EQ(static_cast<net::MsgKind>(resolved.value().kind), net::MsgKind::kError);
    auto parked_err = net::ErrorResponse::decode(resolved.value().payload);
    ASSERT_TRUE(parked_err.ok());
    EXPECT_EQ(parked_err.value().to_status().code(), StatusCode::kUnavailable);

    EXPECT_GE(loop.server.counters().shard_hold_rejections, 1u);
  }
  // Server gone: every pooled byte the hostile blocks pinned is back.
  EXPECT_EQ(util::BufferPool::global().stats().outstanding_bytes, baseline);
}

// Regression (PR 9): a server that dies (or hits its drain deadline)
// *inside* a response frame used to surface as a generic transport
// error, which the retry loop resent blindly — even though the request
// may have executed. It now surfaces as kCancelled and is never
// auto-retried.
TEST(NetClient, MidFrameCloseSurfacesCancelledAndIsNotRetried) {
  auto bound = net::TcpListener::bind("127.0.0.1", 0);
  ASSERT_TRUE(bound.ok()) << bound.status().to_string();
  net::TcpListener listener = std::move(bound).value();

  // A fake server that answers with a torn frame: a complete header
  // promising 8 payload bytes, 2 delivered, then EOF.
  std::thread fake([&listener] {
    auto accepted = listener.accept(5'000ms);
    if (!accepted.ok()) return;
    net::TcpStream conn = std::move(accepted).value();
    auto request = net::read_frame(conn, net::kDefaultMaxPayload);
    if (!request.ok()) return;
    net::Frame response;
    response.kind = request.value().kind | 0x80u;
    response.request_id = request.value().request_id;
    response.payload = {1, 2, 3, 4, 5, 6, 7, 8};
    const std::vector<std::uint8_t> bytes = net::encode_frame(response);
    (void)conn.send_all(bytes.data(), net::kHeaderBytes + 2);
    conn.close();
  });

  net::Client::Config config;
  config.host = "127.0.0.1";
  config.port = listener.port();
  config.connect_timeout = 2'000ms;
  config.io_timeout = 5'000ms;
  config.max_retries = 3;  // must NOT be spent on a torn response
  config.retry_backoff_base = 0ms;
  net::Client client(config);
  const Status s = client.ping();
  fake.join();

  EXPECT_EQ(s.code(), StatusCode::kCancelled) << s.to_string();
  EXPECT_EQ(client.reconnects(), 0u) << "client retried a request with unknown outcome";
}

}  // namespace
}  // namespace hmm
