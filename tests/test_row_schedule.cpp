#include <gtest/gtest.h>

#include <bit>
#include <numeric>
#include <vector>

#include "core/row_schedule.hpp"
#include "util/rng.hpp"

namespace hmm::core {
namespace {

std::vector<std::uint16_t> random_row_perm(std::uint64_t len, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint16_t> g(len);
  std::iota(g.begin(), g.end(), 0);
  for (std::uint64_t i = len - 1; i > 0; --i) {
    std::swap(g[i], g[rng.bounded(i + 1)]);
  }
  return g;
}

TEST(RowSchedule, IdentityRow) {
  const std::uint32_t w = 4;
  std::vector<std::uint16_t> g(16);
  std::iota(g.begin(), g.end(), 0);
  std::vector<std::uint16_t> phat(16), q(16);
  build_row_schedule(g, w, phat, q);
  EXPECT_TRUE(row_schedule_valid(g, phat, q, w));
}

TEST(RowSchedule, ReversalRow) {
  const std::uint32_t w = 4;
  std::vector<std::uint16_t> g(16);
  for (std::uint64_t j = 0; j < 16; ++j) g[j] = static_cast<std::uint16_t>(15 - j);
  std::vector<std::uint16_t> phat(16), q(16);
  build_row_schedule(g, w, phat, q);
  EXPECT_TRUE(row_schedule_valid(g, phat, q, w));
}

TEST(RowSchedule, WorstCaseAllSameBank) {
  // g maps bank-0 positions onto bank-0 positions etc., maximizing
  // parallel edges in the bank graph.
  const std::uint32_t w = 4;
  const std::uint64_t len = 16;
  std::vector<std::uint16_t> g(len);
  // Stride permutation: j -> (j*4 + j/4) within the row keeps whole
  // bank classes together.
  for (std::uint64_t j = 0; j < len; ++j) {
    g[j] = static_cast<std::uint16_t>((j * 4 + j / 4) % len);
  }
  std::vector<std::uint16_t> phat(len), q(len);
  build_row_schedule(g, w, phat, q);
  EXPECT_TRUE(row_schedule_valid(g, phat, q, w));
}

TEST(RowSchedule, RandomRowsManySeeds) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto g = random_row_perm(64, seed);
    std::vector<std::uint16_t> phat(64), q(64);
    build_row_schedule(g, 8, phat, q);
    EXPECT_TRUE(row_schedule_valid(g, phat, q, 8)) << "seed " << seed;
  }
}

TEST(RowSchedule, ValidatorRejectsBrokenSchedules) {
  const std::uint32_t w = 4;
  const auto g = random_row_perm(16, 3);
  std::vector<std::uint16_t> phat(16), q(16);
  build_row_schedule(g, w, phat, q);
  ASSERT_TRUE(row_schedule_valid(g, phat, q, w));

  // Corrupt q: schedule no longer realizes g.
  auto q_bad = q;
  std::swap(q_bad[0], q_bad[1]);
  EXPECT_FALSE(row_schedule_valid(g, phat, q_bad, w));

  // Corrupt phat into a non-permutation.
  auto phat_bad = phat;
  phat_bad[0] = phat_bad[1];
  EXPECT_FALSE(row_schedule_valid(g, phat_bad, q, w));

  // Break the bank property while keeping g = q ∘ phat^-1: swap two
  // full slots across warps whose banks then collide.
  if (phat.size() >= 2 * w) {
    auto phat_sw = phat;
    auto q_sw = q;
    // Move slot 0 (bank b) into warp 1 next to warp 1's same-bank slot.
    std::swap(phat_sw[0], phat_sw[w + 1]);
    std::swap(q_sw[0], q_sw[w + 1]);
    // Still realizes g, but warp banks may now collide; only assert the
    // validator stays consistent (accepts iff banks distinct).
    const bool valid = row_schedule_valid(g, phat_sw, q_sw, w);
    bool banks_ok = true;
    for (std::uint64_t warp = 0; warp < phat_sw.size(); warp += w) {
      std::uint64_t src = 0, dst = 0;
      for (std::uint32_t k = 0; k < w; ++k) {
        src |= 1ull << (phat_sw[warp + k] % w);
        dst |= 1ull << (q_sw[warp + k] % w);
      }
      banks_ok &= (std::popcount(src) == static_cast<int>(w) &&
                   std::popcount(dst) == static_cast<int>(w));
    }
    EXPECT_EQ(valid, banks_ok);
  }
}

TEST(RowSchedule, SetBuildsAllRows) {
  const std::uint64_t rows = 8, cols = 32;
  const std::uint32_t w = 8;
  std::vector<std::uint16_t> g(rows * cols);
  for (std::uint64_t r = 0; r < rows; ++r) {
    const auto row = random_row_perm(cols, r + 100);
    std::copy(row.begin(), row.end(), g.begin() + r * cols);
  }
  const RowScheduleSet set = build_row_schedules(g, rows, cols, w);
  EXPECT_EQ(set.rows, rows);
  EXPECT_EQ(set.cols, cols);
  EXPECT_EQ(set.bytes(), 2 * rows * cols * sizeof(std::uint16_t));
  for (std::uint64_t r = 0; r < rows; ++r) {
    EXPECT_TRUE(row_schedule_valid({g.data() + r * cols, cols}, set.phat_row(r),
                                   set.q_row(r), w))
        << "row " << r;
  }
}

TEST(RowSchedule, SliceRowsReproducesFullSetRows) {
  const std::uint64_t rows = 16, cols = 32;
  const std::uint32_t w = 8;
  std::vector<std::uint16_t> g(rows * cols);
  for (std::uint64_t r = 0; r < rows; ++r) {
    const auto row = random_row_perm(cols, r + 500);
    std::copy(row.begin(), row.end(), g.begin() + r * cols);
  }
  const RowScheduleSet full = build_row_schedules(g, rows, cols, w);

  // Bands of every shape — interior, prefix, suffix, single row, whole
  // set — must be bit-identical to the matching rows of the full set.
  const std::pair<std::uint64_t, std::uint64_t> bands[] = {
      {0, 4}, {4, 12}, {12, 16}, {7, 8}, {0, rows}};
  for (const auto& [begin, end] : bands) {
    const RowScheduleSet band = slice_rows(full, begin, end);
    EXPECT_EQ(band.rows, end - begin);
    EXPECT_EQ(band.cols, cols);
    for (std::uint64_t r = begin; r < end; ++r) {
      const std::uint64_t local = r - begin;
      EXPECT_TRUE(std::equal(band.phat_row(local).begin(), band.phat_row(local).end(),
                             full.phat_row(r).begin()))
          << "band [" << begin << "," << end << ") phat row " << r;
      EXPECT_TRUE(std::equal(band.q_row(local).begin(), band.q_row(local).end(),
                             full.q_row(r).begin()))
          << "band [" << begin << "," << end << ") q row " << r;
      // The sliced schedule rows still satisfy the full invariants
      // against the original row permutation.
      EXPECT_TRUE(row_schedule_valid({g.data() + r * cols, cols}, band.phat_row(local),
                                     band.q_row(local), w))
          << "band [" << begin << "," << end << ") row " << r;
    }
  }
}

TEST(RowSchedule, SliceRowsEmptyBand) {
  const std::uint64_t rows = 4, cols = 16;
  std::vector<std::uint16_t> g(rows * cols);
  for (std::uint64_t r = 0; r < rows; ++r) {
    const auto row = random_row_perm(cols, r + 900);
    std::copy(row.begin(), row.end(), g.begin() + r * cols);
  }
  const RowScheduleSet full = build_row_schedules(g, rows, cols, 4);
  const RowScheduleSet band = slice_rows(full, 2, 2);
  EXPECT_EQ(band.rows, 0u);
  EXPECT_EQ(band.cols, cols);
  EXPECT_EQ(band.bytes(), 0u);
}

// Sweep row length x width with every coloring algorithm.
class RowScheduleSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t,
                                                 graph::ColoringAlgorithm>> {};

TEST_P(RowScheduleSweep, Valid) {
  const auto [len, w, algo] = GetParam();
  if (len < w) GTEST_SKIP();
  const auto g = random_row_perm(len, len * 31 + w);
  std::vector<std::uint16_t> phat(len), q(len);
  build_row_schedule(g, w, phat, q, algo);
  EXPECT_TRUE(row_schedule_valid(g, phat, q, w));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RowScheduleSweep,
    ::testing::Combine(::testing::Values(8ull, 32ull, 128ull, 1024ull),
                       ::testing::Values(4u, 8u, 32u),
                       ::testing::Values(graph::ColoringAlgorithm::kEulerSplit,
                                         graph::ColoringAlgorithm::kMatchingPeel,
                                         graph::ColoringAlgorithm::kAlternatingPath)));

}  // namespace
}  // namespace hmm::core
