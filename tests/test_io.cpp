#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/plan_io.hpp"
#include "core/scheduled.hpp"
#include "perm/generators.hpp"
#include "perm/io.hpp"
#include "test_helpers.hpp"

namespace hmm {
namespace {

using model::MachineParams;

TEST(PermIo, RoundTrip) {
  const perm::Permutation p = perm::by_name("random", 4096, 13);
  std::stringstream ss;
  ASSERT_TRUE(perm::save(ss, p));
  const auto loaded = perm::load(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, p);
}

TEST(PermIo, RejectsBadMagic) {
  std::stringstream ss;
  ss << "NOTAPERM12345678901234567890";
  EXPECT_FALSE(perm::load(ss).has_value());
}

TEST(PermIo, RejectsTruncatedPayload) {
  const perm::Permutation p = perm::identical(1024);
  std::stringstream ss;
  ASSERT_TRUE(perm::save(ss, p));
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream cut(bytes);
  EXPECT_FALSE(perm::load(cut).has_value());
}

TEST(PermIo, RejectsCorruptedMapping) {
  const perm::Permutation p = perm::identical(64);
  std::stringstream ss;
  ASSERT_TRUE(perm::save(ss, p));
  std::string bytes = ss.str();
  // Duplicate one mapping entry (last 4 bytes := preceding 4 bytes).
  std::copy(bytes.end() - 8, bytes.end() - 4, bytes.end() - 4);
  std::stringstream bad(bytes);
  EXPECT_FALSE(perm::load(bad).has_value());
}

TEST(PermIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hmm_perm_io_test.bin";
  const perm::Permutation p = perm::bit_reversal(2048);
  ASSERT_TRUE(perm::save_file(path, p));
  const auto loaded = perm::load_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, p);
  std::remove(path.c_str());
  EXPECT_FALSE(perm::load_file(path).has_value());
}

TEST(PlanIo, RoundTripPreservesEverything) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const perm::Permutation p = perm::by_name("random", 1024, 3);
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);

  std::stringstream ss;
  ASSERT_TRUE(core::save_plan(ss, plan));
  const auto loaded = core::load_plan(ss);
  ASSERT_TRUE(loaded.has_value());

  EXPECT_EQ(loaded->size(), plan.size());
  EXPECT_EQ(loaded->shape(), plan.shape());
  EXPECT_EQ(loaded->params(), plan.params());
  EXPECT_EQ(loaded->pass1().phat, plan.pass1().phat);
  EXPECT_EQ(loaded->pass2().q, plan.pass2().q);
  EXPECT_TRUE(std::equal(loaded->direct3().begin(), loaded->direct3().end(),
                         plan.direct3().begin()));
  // Deep check: the loaded plan still realizes exactly P.
  EXPECT_TRUE(loaded->validate(p));
}

TEST(PlanIo, LoadedPlanExecutes) {
  const MachineParams mp = MachineParams::tiny(8, 20, 4);
  const std::uint64_t n = 1 << 12;
  const perm::Permutation p = perm::bit_reversal(n);
  std::stringstream ss;
  ASSERT_TRUE(core::save_plan(ss, core::ScheduledPlan::build(p, mp)));
  const auto plan = core::load_plan(ss);
  ASSERT_TRUE(plan.has_value());

  util::ThreadPool pool(2);
  const auto a = test::iota_data<float>(n);
  util::aligned_vector<float> b(n), s1(n), s2(n);
  core::scheduled_cpu<float>(pool, *plan, a, b, s1, s2);
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(b[p(i)], a[i]);
}

TEST(PlanIo, RejectsGarbageHeaders) {
  {
    std::stringstream ss;
    ss << "HMMPLAN";  // magic but no version byte / fields
    EXPECT_FALSE(core::load_plan(ss).has_value());
  }
  {
    std::stringstream ss;
    ss << "HMMPLAN";
    ss.put(2);  // valid magic + version, truncated header fields
    EXPECT_FALSE(core::load_plan(ss).has_value());
  }
  {
    std::stringstream ss;
    ss << "WRONGMAG" << std::string(200, '\0');
    EXPECT_FALSE(core::load_plan(ss).has_value());
  }
}

TEST(PlanIo, RejectsTruncatedPayload) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const perm::Permutation p = perm::shuffle(1024);
  std::stringstream ss;
  ASSERT_TRUE(core::save_plan(ss, core::ScheduledPlan::build(p, mp)));
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);  // valid header, half the schedules
  std::stringstream cut(bytes);
  EXPECT_FALSE(core::load_plan(cut).has_value());
}

TEST(PlanIo, RejectsUnknownFormatVersion) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const perm::Permutation p = perm::shuffle(256);
  std::stringstream ss;
  ASSERT_TRUE(core::save_plan(ss, core::ScheduledPlan::build(p, mp)));
  std::string bytes = ss.str();
  bytes[7] = 1;  // the retired v1 header — a stale file must fail cleanly
  std::stringstream old(bytes);
  EXPECT_FALSE(core::load_plan(old).has_value());
  bytes[7] = 99;  // a future version this loader cannot parse
  std::stringstream future_version(bytes);
  EXPECT_FALSE(core::load_plan(future_version).has_value());
}

TEST(PlanIo, RejectsOutOfRangeScheduleEntry) {
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const perm::Permutation p = perm::shuffle(1024);
  std::stringstream ss;
  ASSERT_TRUE(core::save_plan(ss, core::ScheduledPlan::build(p, mp)));
  std::string bytes = ss.str();
  // First u16 of pass1.phat sits right after the 8-byte magic/version
  // + six u64 header fields. 0xFFFF indexes far outside any row (the
  // shape of n=1024 has cols <= 32), so degree sanity must reject it.
  const std::size_t first_entry = 8 + 6 * 8;
  bytes[first_entry] = static_cast<char>(0xFF);
  bytes[first_entry + 1] = static_cast<char>(0xFF);
  std::stringstream corrupt(bytes);
  EXPECT_FALSE(core::load_plan(corrupt).has_value());
}

TEST(PlanIo, RejectsInsaneDimensions) {
  // Craft a header with width = 7 (not a power of two).
  std::stringstream ss;
  ss.write("HMMPLAN", 7);
  ss.put(2);  // current format version
  auto w64 = [&](std::uint64_t v) { ss.write(reinterpret_cast<const char*>(&v), 8); };
  w64(16);  // rows
  w64(16);  // cols
  w64(7);   // width: invalid
  w64(100);
  w64(2);
  w64(48 * 1024);
  EXPECT_FALSE(core::load_plan(ss).has_value());
}

TEST(PlanIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hmm_plan_io_test.bin";
  const MachineParams mp = MachineParams::tiny(4, 9, 2);
  const perm::Permutation p = perm::shuffle(256);
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);
  ASSERT_TRUE(core::save_plan_file(path, plan));
  const auto loaded = core::load_plan_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->validate(p));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hmm
