#include <gtest/gtest.h>

#include <numeric>

#include "perm/generators.hpp"
#include "sim/omega.hpp"
#include "util/rng.hpp"

namespace hmm::sim {
namespace {

std::vector<std::uint64_t> identity_dest(std::uint32_t w) {
  std::vector<std::uint64_t> d(w);
  std::iota(d.begin(), d.end(), 0ull);
  return d;
}

TEST(Omega, IdentityRoutesInOnePass) {
  for (std::uint32_t w : {2u, 4u, 8u, 32u}) {
    OmegaNetwork net(w);
    const auto r = net.route(identity_dest(w));
    EXPECT_EQ(r.passes, 1u) << w;
    EXPECT_EQ(r.switch_conflicts, 0u) << w;
    for (std::uint32_t i = 0; i < w; ++i) EXPECT_EQ(r.pass_of[i], 1u);
  }
}

TEST(Omega, UniformShiftsRouteInOnePass) {
  // Classic omega property: cyclic shifts are routable.
  const std::uint32_t w = 16;
  OmegaNetwork net(w);
  for (std::uint32_t shift = 0; shift < w; ++shift) {
    std::vector<std::uint64_t> d(w);
    for (std::uint32_t i = 0; i < w; ++i) d[i] = (i + shift) % w;
    EXPECT_TRUE(net.routable_in_one_pass(d)) << "shift " << shift;
  }
}

TEST(Omega, BitReversalBlocks) {
  // Bit-reversal is a classic omega-blocking permutation (inputs 0 and
  // 2^(k-1) collide at the very first switch: both have destination
  // bit k-1 equal to their input bit 0). The abstract crossbar MMU
  // charges it one stage; the network needs several passes — exactly
  // the idealization bench_ablation_omega quantifies.
  for (std::uint32_t w : {8u, 16u, 32u}) {
    OmegaNetwork net(w);
    const std::uint32_t bits = util::log2_exact(w);
    std::vector<std::uint64_t> d(w);
    for (std::uint32_t i = 0; i < w; ++i) d[i] = util::bit_reverse(i, bits);
    const auto r = net.route(d);
    EXPECT_GT(r.passes, 1u) << w;
    EXPECT_LE(r.passes, w) << w;
  }
}

TEST(Omega, AllToOneBankSerializesFully) {
  const std::uint32_t w = 8;
  OmegaNetwork net(w);
  std::vector<std::uint64_t> d(w, 3);
  const auto r = net.route(d);
  EXPECT_EQ(r.passes, w);  // one delivery per pass
  // Lower inputs win: input i is served in pass i+1.
  for (std::uint32_t i = 0; i < w; ++i) EXPECT_EQ(r.pass_of[i], i + 1);
}

TEST(Omega, SomePermutationsBlock) {
  // The whole point of the ablation: the network blocks on some
  // bank-distinct patterns the abstract crossbar MMU serves in one
  // stage. Over many random permutations of 32 ports, at least one
  // must need >= 2 passes (the omega-routable class is a tiny fraction
  // of S_32).
  const std::uint32_t w = 32;
  OmegaNetwork net(w);
  util::Xoshiro256 rng(5);
  bool saw_blocking = false;
  for (int s = 0; s < 50 && !saw_blocking; ++s) {
    const perm::Permutation p = perm::random(w, rng);
    std::vector<std::uint64_t> d(w);
    for (std::uint32_t i = 0; i < w; ++i) d[i] = p(i);
    saw_blocking = !net.routable_in_one_pass(d);
  }
  EXPECT_TRUE(saw_blocking);
}

TEST(Omega, EveryRequestEventuallyServed) {
  const std::uint32_t w = 16;
  OmegaNetwork net(w);
  util::Xoshiro256 rng(9);
  for (int s = 0; s < 20; ++s) {
    std::vector<std::uint64_t> d(w);
    for (auto& v : d) v = rng.bounded(w);  // duplicates allowed
    const auto r = net.route(d);
    EXPECT_GE(r.passes, 1u);
    for (std::uint32_t i = 0; i < w; ++i) {
      EXPECT_GE(r.pass_of[i], 1u);
      EXPECT_LE(r.pass_of[i], r.passes);
    }
  }
}

TEST(Omega, IdleInputsIgnored) {
  const std::uint32_t w = 8;
  OmegaNetwork net(w);
  std::vector<std::uint64_t> d(w, model::kNoAccess);
  d[2] = 5;
  const auto r = net.route(d);
  EXPECT_EQ(r.passes, 1u);
  EXPECT_EQ(r.pass_of[2], 1u);
  EXPECT_EQ(r.pass_of[0], 0u);  // never requested
}

TEST(Omega, PassesBoundedByWidthForPermutations) {
  // A permutation (distinct destinations) halves... in the worst case
  // deflections still guarantee at least one delivery per pass, so
  // passes <= w; empirically random permutations need only 2-3.
  const std::uint32_t w = 32;
  OmegaNetwork net(w);
  util::Xoshiro256 rng(11);
  std::uint32_t max_passes = 0;
  for (int s = 0; s < 50; ++s) {
    const perm::Permutation p = perm::random(w, rng);
    std::vector<std::uint64_t> d(w);
    for (std::uint32_t i = 0; i < w; ++i) d[i] = p(i);
    max_passes = std::max(max_passes, net.route(d).passes);
  }
  EXPECT_LE(max_passes, w);
  EXPECT_GE(max_passes, 2u);
}

}  // namespace
}  // namespace hmm::sim
