/// \file permd_replay.cpp
/// \brief Replay a synthetic request trace against the permutation
///        runtime (plan cache + batched async executor) and report the
///        service metrics.
///
/// Models a permutation-as-a-service workload: a fixed population of
/// distinct permutations with Zipf-distributed popularity (a handful of
/// hot reorder patterns — FFT bit-reversal, tensor transposes — plus a
/// long tail), each request permuting a fresh array. Hot permutations
/// hit the plan cache and skip the offline phase; the executor overlaps
/// requests on the shared thread pool.
///
/// Usage:
///   permd_replay [--n 64K] [--perms 24] [--requests 400] [--zipf 1.0]
///                [--cache-mb 64] [--seed 42] [--verify] [--json]
///
/// `--json` appends the metrics snapshot as a single JSON line (the
/// same `to_json()` dump a service would export to a scraper).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "core/permuter.hpp"
#include "perm/generators.hpp"
#include "runtime/executor.hpp"
#include "runtime/metrics.hpp"
#include "runtime/plan_cache.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hmm;

/// The permutation population: a few named hot families first, then a
/// tail of independent random permutations.
perm::Permutation make_member(std::uint64_t rank, std::uint64_t n, std::uint64_t seed) {
  // butterfly only exists at even powers of two; rotation stands in at
  // odd ones so every pow2 --n is accepted.
  const bool even_log2 = util::log2_exact(n) % 2 == 0;
  static const std::vector<std::string> named = {"bit-reversal", "shuffle", "transpose",
                                                 "gray", "butterfly", "unshuffle"};
  if (rank < named.size()) {
    const std::string& family =
        (named[rank] == "butterfly" && !even_log2) ? "rotation" : named[rank];
    return perm::by_name(family, n, seed);
  }
  return perm::by_name("random", n, seed + rank);
}

/// Zipf(s) sampler over ranks [0, k) via inverse-CDF binary search.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t k, double s) : cdf_(k) {
    double total = 0;
    for (std::uint64_t r = 0; r < k; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  std::uint64_t operator()(util::Xoshiro256& rng) const {
    const double u = rng.uniform01();
    std::uint64_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::uint64_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 64 << 10));
  const std::uint64_t num_perms = static_cast<std::uint64_t>(cli.get_int("perms", 24));
  const std::uint64_t requests = static_cast<std::uint64_t>(cli.get_int("requests", 400));
  const double zipf_s = cli.get_double("zipf", 1.0);
  const std::uint64_t cache_bytes =
      static_cast<std::uint64_t>(cli.get_int("cache-mb", 64)) << 20;
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const bool verify = cli.get_bool("verify");
  const bool json = cli.get_bool("json");

  if (!util::is_pow2(n) || n < 64) {
    std::cerr << "permd_replay: --n must be a power of two >= 64 (got " << n << ")\n";
    return 2;
  }

  std::cout << "permd_replay: n=" << n << " perms=" << num_perms << " requests=" << requests
            << " zipf=" << zipf_s << " cache=" << util::format_bytes(cache_bytes) << "\n";

  const model::MachineParams machine = model::MachineParams::gtx680();
  auto& pool = util::ThreadPool::global();

  // The permutation population is materialized up front (a real service
  // receives the mapping with the request; regenerating per request
  // would just benchmark the generators).
  std::vector<perm::Permutation> population;
  population.reserve(num_perms);
  for (std::uint64_t r = 0; r < num_perms; ++r) {
    population.push_back(make_member(r, n, seed));
  }

  runtime::ServiceMetrics metrics;
  runtime::PlanCache cache(runtime::PlanCache::Config{.max_bytes = cache_bytes}, &metrics);
  runtime::Executor executor(pool, &metrics);

  // A bounded ring of request buffers: slot reuse waits for the slot's
  // previous request, which caps resident memory at `slots` arrays
  // while still keeping the executor saturated.
  struct BufferSlot {
    util::aligned_vector<float> a, b;
    std::future<void> done;
    std::uint64_t perm_rank = 0;
    bool in_use = false;
  };
  const std::size_t slots = std::max<std::size_t>(8, 2 * pool.size());
  std::vector<BufferSlot> ring(slots);
  for (auto& slot : ring) {
    slot.a.resize(n);
    slot.b.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) slot.a[i] = static_cast<float>(i & 0xffff);
  }

  ZipfSampler sample(num_perms, zipf_s);
  util::Xoshiro256 rng(seed);
  std::uint64_t verified = 0, verify_failures = 0;

  auto retire = [&](BufferSlot& slot) {
    slot.done.get();  // rethrows request failures
    if (verify) {
      const perm::Permutation& p = population[slot.perm_rank];
      // Spot-check a fixed stride of images (full check is O(n) per
      // request and would dominate the replay).
      for (std::uint64_t i = 0; i < n; i += 97) {
        if (slot.b[p(i)] != slot.a[i]) {
          ++verify_failures;
          break;
        }
      }
      ++verified;
    }
    slot.in_use = false;
  };

  util::Stopwatch wall;
  for (std::uint64_t r = 0; r < requests; ++r) {
    BufferSlot& slot = ring[r % slots];
    if (slot.in_use) retire(slot);
    const std::uint64_t rank = sample(rng);
    auto permuter = cache.acquire<float>(population[rank], machine);
    slot.perm_rank = rank;
    slot.in_use = true;
    slot.done = executor.submit<float>(
        permuter, std::span<const float>(slot.a.data(), n), std::span<float>(slot.b.data(), n));
  }
  for (auto& slot : ring) {
    if (slot.in_use) retire(slot);
  }
  executor.wait_idle();
  const double wall_s = wall.seconds();

  const runtime::MetricsSnapshot snap = metrics.snapshot();
  std::cout << "\n";
  snap.to_table().print(std::cout);
  std::cout << "\nreplayed " << requests << " requests in " << util::format_ms(wall_s * 1e3)
            << " ms  ("
            << util::format_double(static_cast<double>(requests) / wall_s, 1) << " req/s, "
            << util::format_double(
                   static_cast<double>(requests * n) / wall_s / 1e6, 1)
            << " Melem/s)\n";
  std::cout << "cache resident: " << util::format_bytes(cache.bytes()) << " across "
            << cache.entries() << " plans\n";
  if (verify) {
    std::cout << "verified " << verified << " responses, " << verify_failures << " failures\n";
  }
  if (json) {
    std::cout << snap.to_json() << "\n";
  }

  if (snap.hits + snap.misses != snap.lookups || (verify && verify_failures > 0)) {
    std::cerr << "permd_replay: inconsistent metrics or verification failure\n";
    return 1;
  }
  return 0;
}
