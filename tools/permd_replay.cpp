/// \file permd_replay.cpp
/// \brief Replay a synthetic request trace against the permutation
///        runtime (RobustPermuteService: plan cache + batched async
///        executor + robustness controls) and report the service
///        metrics.
///
/// Models a permutation-as-a-service workload: a fixed population of
/// distinct permutations with Zipf-distributed popularity (a handful of
/// hot reorder patterns — FFT bit-reversal, tensor transposes — plus a
/// long tail), each request permuting a fresh array. Hot permutations
/// hit the plan cache and skip the offline phase; the executor overlaps
/// requests on the shared thread pool.
///
/// Chaos mode: `--fault-rate`/`--fault-seed` arm the deterministic
/// FaultInjector (default site: plan_cache.build) so scripted runs can
/// verify the degradation ladder — every *accepted* request must still
/// produce a correct permutation (`--verify`), with failures absorbed
/// by retry + conventional fallback and surfaced in the metrics.
///
/// Usage:
///   permd_replay [--n 64K] [--perms 24] [--requests 400] [--zipf 1.0]
///                [--cache-mb 64] [--seed 42] [--verify] [--json]
///                [--metrics-json <path>] [--prom-file <path>] [--slow-ms 0]
///                [--fault-rate 0.0] [--fault-seed 1] [--fault-sites plan_cache.build]
///                [--fault-stall-ms 50] [--deadline-ms 0] [--max-in-flight 0] [--reject]
///                [--batch-max 1] [--batch-delay-us 200]
///
/// `--json` appends the metrics snapshot as a single JSON line (the
/// same `to_json()` dump a service would export to a scraper),
/// including the robustness section (rejected / cancelled /
/// deadline_exceeded / degraded_executions / build_retries).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "core/permuter.hpp"
#include "perm/generators.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/metrics.hpp"
#include "runtime/service.hpp"
#include "runtime/status.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hmm;

/// The permutation population: a few named hot families first, then a
/// tail of independent random permutations.
perm::Permutation make_member(std::uint64_t rank, std::uint64_t n, std::uint64_t seed) {
  // butterfly only exists at even powers of two; rotation stands in at
  // odd ones so every pow2 --n is accepted.
  const bool even_log2 = util::log2_exact(n) % 2 == 0;
  static const std::vector<std::string> named = {"bit-reversal", "shuffle", "transpose",
                                                 "gray", "butterfly", "unshuffle"};
  if (rank < named.size()) {
    const std::string& family =
        (named[rank] == "butterfly" && !even_log2) ? "rotation" : named[rank];
    return perm::by_name(family, n, seed);
  }
  return perm::by_name("random", n, seed + rank);
}

/// Zipf(s) sampler over ranks [0, k) via inverse-CDF binary search.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t k, double s) : cdf_(k) {
    double total = 0;
    for (std::uint64_t r = 0; r < k; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  std::uint64_t operator()(util::Xoshiro256& rng) const {
    const double u = rng.uniform01();
    std::uint64_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::uint64_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"n", "perms", "requests", "zipf", "cache-mb", "seed", "verify",
                         "json", "metrics-json", "prom-file", "slow-ms", "fault-rate",
                         "fault-seed", "fault-sites", "fault-stall-ms", "deadline-ms",
                         "max-in-flight", "reject", "batch-max", "batch-delay-us"},
                        std::cerr)) {
    return 2;
  }
  const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 64 << 10));
  const std::uint64_t num_perms = static_cast<std::uint64_t>(cli.get_int("perms", 24));
  const std::uint64_t requests = static_cast<std::uint64_t>(cli.get_int("requests", 400));
  const double zipf_s = cli.get_double("zipf", 1.0);
  const std::uint64_t cache_bytes =
      static_cast<std::uint64_t>(cli.get_int("cache-mb", 64)) << 20;
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const bool verify = cli.get_bool("verify");
  const bool json = cli.get_bool("json");
  const std::string metrics_json = cli.get("metrics-json");
  const std::string prom_file = cli.get("prom-file");
  const std::int64_t slow_ms = cli.get_int("slow-ms", 0);
  // Robustness / chaos knobs.
  const double fault_rate = cli.get_double("fault-rate", 0.0);
  const std::uint64_t fault_seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));
  const std::uint64_t fault_stall_ms =
      static_cast<std::uint64_t>(cli.get_int("fault-stall-ms", 50));
  const std::int64_t deadline_ms = cli.get_int("deadline-ms", 0);
  const std::uint64_t max_in_flight =
      static_cast<std::uint64_t>(cli.get_int("max-in-flight", 0));
  const bool reject = cli.get_bool("reject");
  const std::int64_t batch_max = cli.get_int("batch-max", 1);
  const std::int64_t batch_delay_us = cli.get_int("batch-delay-us", 200);

  if (!util::is_pow2(n) || n < 64) {
    std::cerr << "permd_replay: --n must be a power of two >= 64 (got " << n << ")\n";
    return 2;
  }

  if (fault_rate > 0.0) {
    runtime::FaultInjector::Config faults;
    faults.enabled = true;
    faults.seed = fault_seed;
    faults.rate = fault_rate;
    faults.stall_ms = static_cast<std::uint32_t>(fault_stall_ms);
    // Default to the plan-build site (the degradation ladder's fault
    // domain); --fault-sites takes a comma-separated override.
    faults.sites = cli.get("fault-sites", std::string(runtime::fault_sites::kPlanBuild));
    runtime::FaultInjector::instance().configure(faults);
  }

  std::cout << "permd_replay: n=" << n << " perms=" << num_perms << " requests=" << requests
            << " zipf=" << zipf_s << " cache=" << util::format_bytes(cache_bytes);
  if (fault_rate > 0.0) {
    std::cout << "  [chaos: rate=" << fault_rate << " seed=" << fault_seed << "]";
  }
  if (deadline_ms > 0) std::cout << "  [deadline=" << deadline_ms << " ms]";
  std::cout << "\n";

  auto& pool = util::ThreadPool::global();

  // The permutation population is materialized up front (a real service
  // receives the mapping with the request; regenerating per request
  // would just benchmark the generators).
  std::vector<perm::Permutation> population;
  population.reserve(num_perms);
  for (std::uint64_t r = 0; r < num_perms; ++r) {
    population.push_back(make_member(r, n, seed));
  }

  runtime::RobustPermuteService::Config config;
  config.cache.max_bytes = cache_bytes;
  config.executor.max_in_flight = max_in_flight;
  config.executor.admission =
      reject ? runtime::Executor::Admission::kReject : runtime::Executor::Admission::kBlock;
  if (slow_ms > 0) config.executor.slow_log_threshold = std::chrono::milliseconds(slow_ms);
  if (batch_max > 1) {
    config.executor.batch.max_batch = static_cast<std::uint32_t>(batch_max);
    config.executor.batch.max_delay = std::chrono::microseconds(batch_delay_us);
  }
  runtime::RobustPermuteService service(pool, config);

  // A bounded ring of request buffers: slot reuse waits for the slot's
  // previous request, which caps resident memory at `slots` arrays
  // while still keeping the executor saturated.
  struct BufferSlot {
    util::aligned_vector<float> a, b;
    std::future<runtime::Status> done;
    std::uint64_t perm_rank = 0;
    bool in_use = false;
  };
  const std::size_t slots = std::max<std::size_t>(8, 2 * pool.size());
  std::vector<BufferSlot> ring(slots);
  for (auto& slot : ring) {
    slot.a.resize(n);
    slot.b.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) slot.a[i] = static_cast<float>(i & 0xffff);
  }

  ZipfSampler sample(num_perms, zipf_s);
  util::Xoshiro256 rng(seed);
  std::uint64_t accepted = 0, refused = 0, ok_responses = 0, failed_responses = 0;
  std::uint64_t verified = 0, verify_failures = 0;

  auto retire = [&](BufferSlot& slot) {
    const runtime::Status status = slot.done.get();
    if (status.is_ok()) {
      ++ok_responses;
      if (verify) {
        const perm::Permutation& p = population[slot.perm_rank];
        // Spot-check a fixed stride of images (full check is O(n) per
        // request and would dominate the replay).
        for (std::uint64_t i = 0; i < n; i += 97) {
          if (slot.b[p(i)] != slot.a[i]) {
            ++verify_failures;
            break;
          }
        }
        ++verified;
      }
    } else {
      ++failed_responses;
    }
    slot.in_use = false;
  };

  util::Stopwatch wall;
  for (std::uint64_t r = 0; r < requests; ++r) {
    BufferSlot& slot = ring[r % slots];
    if (slot.in_use) retire(slot);
    const std::uint64_t rank = sample(rng);
    runtime::RequestOptions opts;
    if (deadline_ms > 0) {
      opts.deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
    }
    auto submitted = service.submit<float>(population[rank],
                                           std::span<const float>(slot.a.data(), n),
                                           std::span<float>(slot.b.data(), n), opts);
    if (!submitted.ok()) {
      ++refused;  // typed refusal (admission / deadline / bad request)
      continue;
    }
    ++accepted;
    slot.perm_rank = rank;
    slot.in_use = true;
    slot.done = std::move(submitted).value();
  }
  for (auto& slot : ring) {
    if (slot.in_use) retire(slot);
  }
  service.wait_idle();
  const double wall_s = wall.seconds();

  const runtime::MetricsSnapshot snap = service.metrics().snapshot();
  std::cout << "\n";
  snap.to_table().print(std::cout);
  std::cout << "\nreplayed " << requests << " requests in " << util::format_ms(wall_s * 1e3)
            << " ms  ("
            << util::format_double(static_cast<double>(requests) / wall_s, 1) << " req/s, "
            << util::format_double(
                   static_cast<double>(requests * n) / wall_s / 1e6, 1)
            << " Melem/s)\n";
  std::cout << "accepted " << accepted << " (" << ok_responses << " ok, " << failed_responses
            << " failed late), refused " << refused << ", degraded "
            << snap.degraded_executions << ", deadline-exceeded " << snap.deadline_exceeded
            << ", rejected " << snap.rejected << "\n";
  std::cout << "cache resident: " << util::format_bytes(service.cache().bytes()) << " across "
            << service.cache().entries() << " plans\n";
  if (fault_rate > 0.0) {
    std::cout << "faults fired: " << runtime::FaultInjector::instance().total_fired() << "\n";
  }
  if (verify) {
    std::cout << "verified " << verified << " responses, " << verify_failures << " failures\n";
  }
  if (json) {
    std::cout << snap.to_json() << "\n";
  }
  if (!metrics_json.empty()) {
    // Final snapshot to a file so CI / BENCH_*.json trend tracking can
    // consume serving metrics without scraping stdout.
    std::ofstream mf(metrics_json);
    mf << snap.to_json() << "\n";
    if (!mf) {
      std::cerr << "permd_replay: cannot write --metrics-json " << metrics_json << "\n";
      return 1;
    }
  }
  if (!prom_file.empty()) {
    // Same exposition the daemon serves, dumped once at end of run so
    // offline replays feed the same dashboards / CI checks.
    std::ofstream pf(prom_file);
    pf << snap.to_prometheus();
    if (!pf) {
      std::cerr << "permd_replay: cannot write --prom-file " << prom_file << "\n";
      return 1;
    }
  }

  if (snap.hits + snap.misses != snap.lookups || (verify && verify_failures > 0)) {
    std::cerr << "permd_replay: inconsistent metrics or verification failure\n";
    return 1;
  }
  if (accepted != ok_responses + failed_responses) {
    std::cerr << "permd_replay: lost a response (accepted != resolved)\n";
    return 1;
  }
  return 0;
}
