/// \file permd_client.cpp
/// \brief Command-line HMMP client: probe a permd_serve instance, pull
///        its stats, or run a verified permute round-trip.
///
/// Commands (first positional argument):
///   ping      liveness probe (echo round-trip)
///   stats     print the server's ServiceMetrics snapshot JSON; against
///             a permd_router the fleet snapshot is rendered as a
///             per-backend table (state, breaker, forwards, failovers)
///             instead — `--json true` forces the raw JSON either way
///   phases    fetch the same snapshot and render the per-phase
///             latency breakdown as a table
///   permute   register a named permutation family, send `--count`
///             permute requests, and verify every response locally
///             against perm::Permutation::apply (the same ground truth
///             the test suite uses)
///   program   run an op *chain* in one EXECUTE_PROGRAM round trip and
///             verify the response against applying each op locally in
///             order. `--ops` is a comma-separated chain; tokens:
///               plan:<family>     SUBMIT_PLAN the family, then PERMUTE it
///               inverse:<family>  SUBMIT_PLAN the family, then INVERSE it
///               transpose | reverse | shuffle | unshuffle | bit-reversal
///               rotate:<shift>
///             `--staged true` forces the server's staged path (results
///             must be bit-identical to fused).
///   dpermute  distributed permute smoke against a permd_router: one
///             verified permute round-trip sized for the router's
///             --distributed-max-bytes threshold, then a before/after
///             scrape of the router's distributed counters.
///             `--require-distributed true` fails (exit 1) unless the
///             request was actually served by the sharded path.
///
/// Usage:
///   permd_client <ping|stats|phases|permute|program|dpermute> --port P
///                [--host 127.0.0.1] [--n 64K] [--family bit-reversal]
///                [--seed 42] [--count 4] [--deadline-ms 0]
///                [--timeout-ms 30000] [--ops plan:random,bit-reversal]
///                [--staged false] [--json false]
///                [--require-distributed false] [--max-payload-mb 64]
///
/// Exit code: 0 on success, 1 on any typed error or verification
/// failure, 2 on usage errors.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "net/client.hpp"
#include "net/socket.hpp"
#include "perm/generators.hpp"
#include "perm/permutation.hpp"
#include "runtime/phase.hpp"
#include "runtime/program.hpp"
#include "util/bits.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

/// Pull `"key":<u64>` out of a JSON dump starting at `from`. Good
/// enough for the snapshots this tool itself requested.
bool scrape_u64(const std::string& json, std::string_view key, std::uint64_t& out,
                std::size_t from = 0) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = json.find(needle, from);
  if (at == std::string::npos) return false;
  const char* p = json.c_str() + at + needle.size();
  if (*p < '0' || *p > '9') return false;
  out = std::strtoull(p, nullptr, 10);
  return true;
}

/// Pull `"key":"<string>"` out of a JSON dump starting at `from`.
bool scrape_string(const std::string& json, std::string_view key, std::string& out,
                   std::size_t from = 0) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const std::size_t at = json.find(needle, from);
  if (at == std::string::npos) return false;
  const std::size_t begin = at + needle.size();
  const std::size_t end = json.find('"', begin);
  if (end == std::string::npos) return false;
  out = json.substr(begin, end - begin);
  return true;
}

bool scrape_bool(const std::string& json, std::string_view key, bool& out,
                 std::size_t from = 0) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = json.find(needle, from);
  if (at == std::string::npos) return false;
  out = json.compare(at + needle.size(), 4, "true") == 0;
  return true;
}

/// Render a router fleet snapshot as a per-backend table. Returns false
/// when `json` is not router-shaped (single-server ServiceMetrics).
bool print_router_stats(const std::string& json, std::ostream& os) {
  if (json.find("\"router\":{") == std::string::npos) return false;
  using hmm::util::format_count;
  std::uint64_t routed = 0, failovers = 0, shorted = 0, dist = 0, dist_failed = 0;
  (void)scrape_u64(json, "requests_total", routed);
  (void)scrape_u64(json, "failovers_total", failovers);
  (void)scrape_u64(json, "breaker_short_circuits", shorted);
  (void)scrape_u64(json, "distributed_requests", dist);
  (void)scrape_u64(json, "distributed_failures", dist_failed);
  os << "router: " << routed << " requests routed, " << failovers << " failovers, "
     << shorted << " breaker short-circuits";
  if (dist > 0 || dist_failed > 0) {
    os << ", " << dist << " distributed (" << dist_failed << " failed)";
  }
  os << "\n";

  hmm::util::Table t({"backend", "state", "breaker", "requests", "ok", "transport-fail",
                      "failovers-to", "plans-synced"});
  std::size_t at = json.find("\"backend\":\"");
  while (at != std::string::npos) {
    std::string label;
    bool healthy = true, breaker = false;
    std::uint64_t requests = 0, ok = 0, transport = 0, failovers_to = 0, synced = 0;
    (void)scrape_string(json, "backend", label, at);
    (void)scrape_bool(json, "healthy", healthy, at);
    (void)scrape_bool(json, "breaker_open", breaker, at);
    (void)scrape_u64(json, "requests", requests, at);
    (void)scrape_u64(json, "ok", ok, at);
    (void)scrape_u64(json, "transport_failures", transport, at);
    (void)scrape_u64(json, "failovers_to", failovers_to, at);
    (void)scrape_u64(json, "plans_synced", synced, at);
    t.add_row({label, healthy ? "healthy" : "EJECTED", breaker ? "open" : "closed",
               format_count(requests), format_count(ok), format_count(transport),
               format_count(failovers_to), format_count(synced)});
    at = json.find("\"backend\":\"", at + 1);
  }
  t.print(os);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmm;

  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"host", "port", "n", "family", "seed", "count", "deadline-ms",
                         "timeout-ms", "ops", "staged", "json", "require-distributed",
                         "max-payload-mb"},
                        std::cerr)) {
    return 2;
  }
  if (cli.positional().size() != 1) {
    std::cerr << "usage: permd_client <ping|stats|phases|permute|program|dpermute> "
                 "--port P [flags]\n";
    return 2;
  }
  const std::string command = cli.positional()[0];
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  if (port == 0) {
    std::cerr << "permd_client: --port is required\n";
    return 2;
  }

  net::ignore_sigpipe();
  net::Client::Config config;
  config.host = cli.get("host", "127.0.0.1");
  config.port = port;
  config.io_timeout = std::chrono::milliseconds(cli.get_int("timeout-ms", 30'000));
  config.max_payload_bytes =
      static_cast<std::uint32_t>(cli.get_int("max-payload-mb", 64) << 20);
  net::Client client(config);

  if (command == "ping") {
    util::Stopwatch sw;
    const runtime::Status s = client.ping();
    if (!s.is_ok()) {
      std::cerr << "permd_client: ping failed: " << s.to_string() << "\n";
      return 1;
    }
    std::cout << "pong from " << config.host << ":" << port << " in "
              << util::format_ms(sw.millis()) << " ms\n";
    return 0;
  }

  if (command == "stats") {
    const runtime::StatusOr<std::string> stats = client.stats_json();
    if (!stats.ok()) {
      std::cerr << "permd_client: stats failed: " << stats.status().to_string() << "\n";
      return 1;
    }
    // A router answers STATS with its fleet snapshot — render that as a
    // per-backend table; a plain server's ServiceMetrics stays raw JSON.
    if (cli.get_bool("json") || !print_router_stats(stats.value(), std::cout)) {
      std::cout << stats.value() << "\n";
    }
    return 0;
  }

  if (command == "dpermute") {
    const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 1 << 20));
    const std::string family = cli.get("family", "bit-reversal");
    const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    const std::int64_t count = cli.get_int("count", 1);
    const std::int64_t deadline_ms = cli.get_int("deadline-ms", 0);
    const bool require_distributed = cli.get_bool("require-distributed");

    const runtime::StatusOr<std::string> before = client.stats_json();
    if (!before.ok()) {
      std::cerr << "permd_client: stats failed: " << before.status().to_string() << "\n";
      return 1;
    }
    std::uint64_t dist_before = 0;
    const bool is_router = scrape_u64(before.value(), "distributed_requests", dist_before);
    if (require_distributed && !is_router) {
      std::cerr << "permd_client: --require-distributed needs a permd_router target\n";
      return 1;
    }

    const perm::Permutation p = perm::by_name(family, n, seed);
    const runtime::StatusOr<std::uint64_t> plan = client.submit_plan(p);
    if (!plan.ok()) {
      std::cerr << "permd_client: submit_plan failed: " << plan.status().to_string() << "\n";
      return 1;
    }
    std::vector<std::uint32_t> a(n), b(n), expect(n);
    for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i * 2654435761u);
    p.apply<std::uint32_t>({a.data(), n}, {expect.data(), n});

    for (std::int64_t r = 0; r < count; ++r) {
      util::Stopwatch sw;
      const runtime::Status s = client.permute(plan.value(), {a.data(), n}, {b.data(), n},
                                               std::chrono::milliseconds(deadline_ms));
      if (!s.is_ok()) {
        std::cerr << "permd_client: dpermute " << r << " failed: " << s.to_string() << "\n";
        return 1;
      }
      if (b != expect) {
        std::cerr << "permd_client: dpermute " << r << " returned wrong data\n";
        return 1;
      }
      std::cout << "dpermute " << r << ": ok, verified, " << util::format_ms(sw.millis())
                << " ms\n";
    }

    const runtime::StatusOr<std::string> after = client.stats_json();
    std::uint64_t dist_after = 0;
    if (after.ok()) (void)scrape_u64(after.value(), "distributed_requests", dist_after);
    const std::uint64_t delta = dist_after - dist_before;
    std::cout << "distributed requests: " << delta << " of " << count
              << " served by the sharded path\n";
    if (require_distributed && delta == 0) {
      std::cerr << "permd_client: FAILED --require-distributed (the router served the "
                   "request single-node; check --distributed-max-bytes and fleet size)\n";
      return 1;
    }
    return 0;
  }

  if (command == "phases") {
    const runtime::StatusOr<std::string> stats = client.stats_json();
    if (!stats.ok()) {
      std::cerr << "permd_client: phases failed: " << stats.status().to_string() << "\n";
      return 1;
    }
    const std::vector<runtime::PhaseScrape> phases =
        runtime::scrape_phases_json(stats.value());
    if (phases.empty()) {
      std::cerr << "permd_client: server reported no phase breakdown\n";
      return 1;
    }
    util::Table t({"phase", "count", "p50", "p95", "max"});
    for (const runtime::PhaseScrape& row : phases) {
      t.add_row({row.label, util::format_count(row.count),
                 util::format_ms(static_cast<double>(row.p50) / 1e6) + " ms",
                 util::format_ms(static_cast<double>(row.p95) / 1e6) + " ms",
                 util::format_ms(static_cast<double>(row.max) / 1e6) + " ms"});
    }
    t.print(std::cout);
    return 0;
  }

  if (command == "program") {
    const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 64 << 10));
    const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    const std::int64_t count = cli.get_int("count", 1);
    const std::int64_t deadline_ms = cli.get_int("deadline-ms", 0);
    const bool staged = cli.get_bool("staged", false);
    const std::string ops_spec = cli.get("ops", "plan:random,bit-reversal");

    // Parse the chain, registering plan:/inverse: families as we go and
    // building the same chain locally for ground-truth verification.
    std::vector<runtime::ProgramOp> ops;
    std::vector<perm::Permutation> local;
    std::size_t start = 0;
    while (start <= ops_spec.size()) {
      const std::size_t comma = ops_spec.find(',', start);
      const std::string token = ops_spec.substr(
          start, comma == std::string::npos ? std::string::npos : comma - start);
      start = comma == std::string::npos ? ops_spec.size() + 1 : comma + 1;
      if (token.empty()) continue;

      if (token.rfind("plan:", 0) == 0 || token.rfind("inverse:", 0) == 0) {
        const bool inverse = token[0] == 'i';
        const std::string family = token.substr(token.find(':') + 1);
        const perm::Permutation p = perm::by_name(family, n, seed);
        const runtime::StatusOr<std::uint64_t> plan = client.submit_plan(p);
        if (!plan.ok()) {
          std::cerr << "permd_client: submit_plan for '" << token
                    << "' failed: " << plan.status().to_string() << "\n";
          return 1;
        }
        ops.push_back({inverse ? runtime::ProgramOpCode::kInverse
                               : runtime::ProgramOpCode::kPermute,
                       plan.value()});
        local.push_back(inverse ? p.inverse() : p);
      } else if (token.rfind("rotate:", 0) == 0) {
        const std::uint64_t shift =
            static_cast<std::uint64_t>(std::stoll(token.substr(token.find(':') + 1)));
        ops.push_back({runtime::ProgramOpCode::kRotate, shift});
        local.push_back(perm::rotation(n, shift % n));
      } else if (token == "transpose") {
        std::uint64_t root = 0;
        while ((root + 1) * (root + 1) <= n) ++root;
        if (root * root != n) {
          std::cerr << "permd_client: transpose needs a perfect-square --n\n";
          return 2;
        }
        ops.push_back({runtime::ProgramOpCode::kTranspose, 0});
        local.push_back(perm::transpose(root, root));
      } else if (token == "reverse" || token == "shuffle" || token == "unshuffle" ||
                 token == "bit-reversal") {
        if (!util::is_pow2(n)) {
          std::cerr << "permd_client: '" << token << "' needs a power-of-two --n\n";
          return 2;
        }
        if (token == "reverse") {
          ops.push_back({runtime::ProgramOpCode::kReverse, 0});
          local.push_back(perm::bit_complement(n));
        } else if (token == "shuffle") {
          ops.push_back({runtime::ProgramOpCode::kShuffle, 0});
          local.push_back(perm::shuffle(n));
        } else if (token == "unshuffle") {
          ops.push_back({runtime::ProgramOpCode::kUnshuffle, 0});
          local.push_back(perm::unshuffle(n));
        } else {
          ops.push_back({runtime::ProgramOpCode::kBitReversal, 0});
          local.push_back(perm::bit_reversal(n));
        }
      } else {
        std::cerr << "permd_client: unknown op token '" << token << "'\n";
        return 2;
      }
    }
    if (ops.empty()) {
      std::cerr << "permd_client: --ops parsed to an empty chain\n";
      return 2;
    }

    // Ground truth: apply the chain locally, op by op.
    std::vector<std::uint32_t> a(n), b(n), expect(n), tmp(n);
    for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i * 2654435761u);
    expect = a;
    for (const perm::Permutation& p : local) {
      p.apply<std::uint32_t>({expect.data(), n}, {tmp.data(), n});
      expect.swap(tmp);
    }

    std::cout << "program depth=" << ops.size() << " n=" << n
              << (staged ? " (staged)" : " (fused)") << "\n";
    for (std::int64_t r = 0; r < count; ++r) {
      util::Stopwatch sw;
      const runtime::Status s =
          client.execute_program({ops.data(), ops.size()}, {a.data(), n}, {b.data(), n},
                                 std::chrono::milliseconds(deadline_ms), staged);
      if (!s.is_ok()) {
        std::cerr << "permd_client: program " << r << " failed: " << s.to_string() << "\n";
        return 1;
      }
      if (b != expect) {
        std::cerr << "permd_client: program " << r << " returned wrong data\n";
        return 1;
      }
      std::cout << "program " << r << ": ok, verified, " << util::format_ms(sw.millis())
                << " ms\n";
    }
    return 0;
  }

  if (command != "permute") {
    std::cerr << "permd_client: unknown command '" << command << "'\n";
    return 2;
  }

  const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 64 << 10));
  const std::string family = cli.get("family", "bit-reversal");
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::int64_t count = cli.get_int("count", 4);
  const std::int64_t deadline_ms = cli.get_int("deadline-ms", 0);

  const perm::Permutation p = perm::by_name(family, n, seed);
  const runtime::StatusOr<std::uint64_t> plan = client.submit_plan(p);
  if (!plan.ok()) {
    std::cerr << "permd_client: submit_plan failed: " << plan.status().to_string() << "\n";
    return 1;
  }
  std::cout << "plan " << family << " n=" << n << " registered as id 0x" << std::hex
            << plan.value() << std::dec << "\n";

  std::vector<std::uint32_t> a(n), b(n), expect(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i * 2654435761u);
  p.apply<std::uint32_t>({a.data(), n}, {expect.data(), n});

  for (std::int64_t r = 0; r < count; ++r) {
    util::Stopwatch sw;
    const runtime::Status s = client.permute(plan.value(), {a.data(), n}, {b.data(), n},
                                             std::chrono::milliseconds(deadline_ms));
    if (!s.is_ok()) {
      std::cerr << "permd_client: permute " << r << " failed: " << s.to_string() << "\n";
      return 1;
    }
    if (b != expect) {
      std::cerr << "permd_client: permute " << r << " returned wrong data\n";
      return 1;
    }
    std::cout << "permute " << r << ": ok, verified, " << util::format_ms(sw.millis())
              << " ms\n";
  }
  return 0;
}
