/// \file permd_client.cpp
/// \brief Command-line HMMP client: probe a permd_serve instance, pull
///        its stats, or run a verified permute round-trip.
///
/// Commands (first positional argument):
///   ping      liveness probe (echo round-trip)
///   stats     print the server's ServiceMetrics snapshot JSON
///   phases    fetch the same snapshot and render the per-phase
///             latency breakdown as a table
///   permute   register a named permutation family, send `--count`
///             permute requests, and verify every response locally
///             against perm::Permutation::apply (the same ground truth
///             the test suite uses)
///
/// Usage:
///   permd_client <ping|stats|phases|permute> --port P [--host 127.0.0.1]
///                [--n 64K] [--family bit-reversal] [--seed 42]
///                [--count 4] [--deadline-ms 0] [--timeout-ms 30000]
///
/// Exit code: 0 on success, 1 on any typed error or verification
/// failure, 2 on usage errors.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/socket.hpp"
#include "perm/generators.hpp"
#include "perm/permutation.hpp"
#include "runtime/phase.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hmm;

  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"host", "port", "n", "family", "seed", "count", "deadline-ms",
                         "timeout-ms"},
                        std::cerr)) {
    return 2;
  }
  if (cli.positional().size() != 1) {
    std::cerr << "usage: permd_client <ping|stats|phases|permute> --port P [flags]\n";
    return 2;
  }
  const std::string command = cli.positional()[0];
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  if (port == 0) {
    std::cerr << "permd_client: --port is required\n";
    return 2;
  }

  net::ignore_sigpipe();
  net::Client::Config config;
  config.host = cli.get("host", "127.0.0.1");
  config.port = port;
  config.io_timeout = std::chrono::milliseconds(cli.get_int("timeout-ms", 30'000));
  net::Client client(config);

  if (command == "ping") {
    util::Stopwatch sw;
    const runtime::Status s = client.ping();
    if (!s.is_ok()) {
      std::cerr << "permd_client: ping failed: " << s.to_string() << "\n";
      return 1;
    }
    std::cout << "pong from " << config.host << ":" << port << " in "
              << util::format_ms(sw.millis()) << " ms\n";
    return 0;
  }

  if (command == "stats") {
    const runtime::StatusOr<std::string> stats = client.stats_json();
    if (!stats.ok()) {
      std::cerr << "permd_client: stats failed: " << stats.status().to_string() << "\n";
      return 1;
    }
    std::cout << stats.value() << "\n";
    return 0;
  }

  if (command == "phases") {
    const runtime::StatusOr<std::string> stats = client.stats_json();
    if (!stats.ok()) {
      std::cerr << "permd_client: phases failed: " << stats.status().to_string() << "\n";
      return 1;
    }
    const std::vector<runtime::PhaseScrape> phases =
        runtime::scrape_phases_json(stats.value());
    if (phases.empty()) {
      std::cerr << "permd_client: server reported no phase breakdown\n";
      return 1;
    }
    util::Table t({"phase", "count", "p50", "p95", "max"});
    for (const runtime::PhaseScrape& row : phases) {
      t.add_row({row.label, util::format_count(row.count),
                 util::format_ms(static_cast<double>(row.p50) / 1e6) + " ms",
                 util::format_ms(static_cast<double>(row.p95) / 1e6) + " ms",
                 util::format_ms(static_cast<double>(row.max) / 1e6) + " ms"});
    }
    t.print(std::cout);
    return 0;
  }

  if (command != "permute") {
    std::cerr << "permd_client: unknown command '" << command << "'\n";
    return 2;
  }

  const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 64 << 10));
  const std::string family = cli.get("family", "bit-reversal");
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::int64_t count = cli.get_int("count", 4);
  const std::int64_t deadline_ms = cli.get_int("deadline-ms", 0);

  const perm::Permutation p = perm::by_name(family, n, seed);
  const runtime::StatusOr<std::uint64_t> plan = client.submit_plan(p);
  if (!plan.ok()) {
    std::cerr << "permd_client: submit_plan failed: " << plan.status().to_string() << "\n";
    return 1;
  }
  std::cout << "plan " << family << " n=" << n << " registered as id 0x" << std::hex
            << plan.value() << std::dec << "\n";

  std::vector<std::uint32_t> a(n), b(n), expect(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i * 2654435761u);
  p.apply<std::uint32_t>({a.data(), n}, {expect.data(), n});

  for (std::int64_t r = 0; r < count; ++r) {
    util::Stopwatch sw;
    const runtime::Status s = client.permute(plan.value(), {a.data(), n}, {b.data(), n},
                                             std::chrono::milliseconds(deadline_ms));
    if (!s.is_ok()) {
      std::cerr << "permd_client: permute " << r << " failed: " << s.to_string() << "\n";
      return 1;
    }
    if (b != expect) {
      std::cerr << "permd_client: permute " << r << " returned wrong data\n";
      return 1;
    }
    std::cout << "permute " << r << ": ok, verified, " << util::format_ms(sw.millis())
              << " ms\n";
  }
  return 0;
}
