/// \file permd_client.cpp
/// \brief Command-line HMMP client: probe a permd_serve instance, pull
///        its stats, or run a verified permute round-trip.
///
/// Commands (first positional argument):
///   ping      liveness probe (echo round-trip)
///   stats     print the server's ServiceMetrics snapshot JSON
///   phases    fetch the same snapshot and render the per-phase
///             latency breakdown as a table
///   permute   register a named permutation family, send `--count`
///             permute requests, and verify every response locally
///             against perm::Permutation::apply (the same ground truth
///             the test suite uses)
///   program   run an op *chain* in one EXECUTE_PROGRAM round trip and
///             verify the response against applying each op locally in
///             order. `--ops` is a comma-separated chain; tokens:
///               plan:<family>     SUBMIT_PLAN the family, then PERMUTE it
///               inverse:<family>  SUBMIT_PLAN the family, then INVERSE it
///               transpose | reverse | shuffle | unshuffle | bit-reversal
///               rotate:<shift>
///             `--staged true` forces the server's staged path (results
///             must be bit-identical to fused).
///
/// Usage:
///   permd_client <ping|stats|phases|permute|program> --port P
///                [--host 127.0.0.1] [--n 64K] [--family bit-reversal]
///                [--seed 42] [--count 4] [--deadline-ms 0]
///                [--timeout-ms 30000] [--ops plan:random,bit-reversal]
///                [--staged false]
///
/// Exit code: 0 on success, 1 on any typed error or verification
/// failure, 2 on usage errors.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/socket.hpp"
#include "perm/generators.hpp"
#include "perm/permutation.hpp"
#include "runtime/phase.hpp"
#include "runtime/program.hpp"
#include "util/bits.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hmm;

  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"host", "port", "n", "family", "seed", "count", "deadline-ms",
                         "timeout-ms", "ops", "staged"},
                        std::cerr)) {
    return 2;
  }
  if (cli.positional().size() != 1) {
    std::cerr << "usage: permd_client <ping|stats|phases|permute|program> --port P [flags]\n";
    return 2;
  }
  const std::string command = cli.positional()[0];
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  if (port == 0) {
    std::cerr << "permd_client: --port is required\n";
    return 2;
  }

  net::ignore_sigpipe();
  net::Client::Config config;
  config.host = cli.get("host", "127.0.0.1");
  config.port = port;
  config.io_timeout = std::chrono::milliseconds(cli.get_int("timeout-ms", 30'000));
  net::Client client(config);

  if (command == "ping") {
    util::Stopwatch sw;
    const runtime::Status s = client.ping();
    if (!s.is_ok()) {
      std::cerr << "permd_client: ping failed: " << s.to_string() << "\n";
      return 1;
    }
    std::cout << "pong from " << config.host << ":" << port << " in "
              << util::format_ms(sw.millis()) << " ms\n";
    return 0;
  }

  if (command == "stats") {
    const runtime::StatusOr<std::string> stats = client.stats_json();
    if (!stats.ok()) {
      std::cerr << "permd_client: stats failed: " << stats.status().to_string() << "\n";
      return 1;
    }
    std::cout << stats.value() << "\n";
    return 0;
  }

  if (command == "phases") {
    const runtime::StatusOr<std::string> stats = client.stats_json();
    if (!stats.ok()) {
      std::cerr << "permd_client: phases failed: " << stats.status().to_string() << "\n";
      return 1;
    }
    const std::vector<runtime::PhaseScrape> phases =
        runtime::scrape_phases_json(stats.value());
    if (phases.empty()) {
      std::cerr << "permd_client: server reported no phase breakdown\n";
      return 1;
    }
    util::Table t({"phase", "count", "p50", "p95", "max"});
    for (const runtime::PhaseScrape& row : phases) {
      t.add_row({row.label, util::format_count(row.count),
                 util::format_ms(static_cast<double>(row.p50) / 1e6) + " ms",
                 util::format_ms(static_cast<double>(row.p95) / 1e6) + " ms",
                 util::format_ms(static_cast<double>(row.max) / 1e6) + " ms"});
    }
    t.print(std::cout);
    return 0;
  }

  if (command == "program") {
    const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 64 << 10));
    const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    const std::int64_t count = cli.get_int("count", 1);
    const std::int64_t deadline_ms = cli.get_int("deadline-ms", 0);
    const bool staged = cli.get_bool("staged", false);
    const std::string ops_spec = cli.get("ops", "plan:random,bit-reversal");

    // Parse the chain, registering plan:/inverse: families as we go and
    // building the same chain locally for ground-truth verification.
    std::vector<runtime::ProgramOp> ops;
    std::vector<perm::Permutation> local;
    std::size_t start = 0;
    while (start <= ops_spec.size()) {
      const std::size_t comma = ops_spec.find(',', start);
      const std::string token = ops_spec.substr(
          start, comma == std::string::npos ? std::string::npos : comma - start);
      start = comma == std::string::npos ? ops_spec.size() + 1 : comma + 1;
      if (token.empty()) continue;

      if (token.rfind("plan:", 0) == 0 || token.rfind("inverse:", 0) == 0) {
        const bool inverse = token[0] == 'i';
        const std::string family = token.substr(token.find(':') + 1);
        const perm::Permutation p = perm::by_name(family, n, seed);
        const runtime::StatusOr<std::uint64_t> plan = client.submit_plan(p);
        if (!plan.ok()) {
          std::cerr << "permd_client: submit_plan for '" << token
                    << "' failed: " << plan.status().to_string() << "\n";
          return 1;
        }
        ops.push_back({inverse ? runtime::ProgramOpCode::kInverse
                               : runtime::ProgramOpCode::kPermute,
                       plan.value()});
        local.push_back(inverse ? p.inverse() : p);
      } else if (token.rfind("rotate:", 0) == 0) {
        const std::uint64_t shift =
            static_cast<std::uint64_t>(std::stoll(token.substr(token.find(':') + 1)));
        ops.push_back({runtime::ProgramOpCode::kRotate, shift});
        local.push_back(perm::rotation(n, shift % n));
      } else if (token == "transpose") {
        std::uint64_t root = 0;
        while ((root + 1) * (root + 1) <= n) ++root;
        if (root * root != n) {
          std::cerr << "permd_client: transpose needs a perfect-square --n\n";
          return 2;
        }
        ops.push_back({runtime::ProgramOpCode::kTranspose, 0});
        local.push_back(perm::transpose(root, root));
      } else if (token == "reverse" || token == "shuffle" || token == "unshuffle" ||
                 token == "bit-reversal") {
        if (!util::is_pow2(n)) {
          std::cerr << "permd_client: '" << token << "' needs a power-of-two --n\n";
          return 2;
        }
        if (token == "reverse") {
          ops.push_back({runtime::ProgramOpCode::kReverse, 0});
          local.push_back(perm::bit_complement(n));
        } else if (token == "shuffle") {
          ops.push_back({runtime::ProgramOpCode::kShuffle, 0});
          local.push_back(perm::shuffle(n));
        } else if (token == "unshuffle") {
          ops.push_back({runtime::ProgramOpCode::kUnshuffle, 0});
          local.push_back(perm::unshuffle(n));
        } else {
          ops.push_back({runtime::ProgramOpCode::kBitReversal, 0});
          local.push_back(perm::bit_reversal(n));
        }
      } else {
        std::cerr << "permd_client: unknown op token '" << token << "'\n";
        return 2;
      }
    }
    if (ops.empty()) {
      std::cerr << "permd_client: --ops parsed to an empty chain\n";
      return 2;
    }

    // Ground truth: apply the chain locally, op by op.
    std::vector<std::uint32_t> a(n), b(n), expect(n), tmp(n);
    for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i * 2654435761u);
    expect = a;
    for (const perm::Permutation& p : local) {
      p.apply<std::uint32_t>({expect.data(), n}, {tmp.data(), n});
      expect.swap(tmp);
    }

    std::cout << "program depth=" << ops.size() << " n=" << n
              << (staged ? " (staged)" : " (fused)") << "\n";
    for (std::int64_t r = 0; r < count; ++r) {
      util::Stopwatch sw;
      const runtime::Status s =
          client.execute_program({ops.data(), ops.size()}, {a.data(), n}, {b.data(), n},
                                 std::chrono::milliseconds(deadline_ms), staged);
      if (!s.is_ok()) {
        std::cerr << "permd_client: program " << r << " failed: " << s.to_string() << "\n";
        return 1;
      }
      if (b != expect) {
        std::cerr << "permd_client: program " << r << " returned wrong data\n";
        return 1;
      }
      std::cout << "program " << r << ": ok, verified, " << util::format_ms(sw.millis())
                << " ms\n";
    }
    return 0;
  }

  if (command != "permute") {
    std::cerr << "permd_client: unknown command '" << command << "'\n";
    return 2;
  }

  const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 64 << 10));
  const std::string family = cli.get("family", "bit-reversal");
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::int64_t count = cli.get_int("count", 4);
  const std::int64_t deadline_ms = cli.get_int("deadline-ms", 0);

  const perm::Permutation p = perm::by_name(family, n, seed);
  const runtime::StatusOr<std::uint64_t> plan = client.submit_plan(p);
  if (!plan.ok()) {
    std::cerr << "permd_client: submit_plan failed: " << plan.status().to_string() << "\n";
    return 1;
  }
  std::cout << "plan " << family << " n=" << n << " registered as id 0x" << std::hex
            << plan.value() << std::dec << "\n";

  std::vector<std::uint32_t> a(n), b(n), expect(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<std::uint32_t>(i * 2654435761u);
  p.apply<std::uint32_t>({a.data(), n}, {expect.data(), n});

  for (std::int64_t r = 0; r < count; ++r) {
    util::Stopwatch sw;
    const runtime::Status s = client.permute(plan.value(), {a.data(), n}, {b.data(), n},
                                             std::chrono::milliseconds(deadline_ms));
    if (!s.is_ok()) {
      std::cerr << "permd_client: permute " << r << " failed: " << s.to_string() << "\n";
      return 1;
    }
    if (b != expect) {
      std::cerr << "permd_client: permute " << r << " returned wrong data\n";
      return 1;
    }
    std::cout << "permute " << r << ": ok, verified, " << util::format_ms(sw.millis())
              << " ms\n";
  }
  return 0;
}
