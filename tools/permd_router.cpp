/// \file permd_router.cpp
/// \brief The permd fleet front door: `net::Router` consistent-hashing
///        plan fingerprints across N backend permd instances, with
///        active health checks, replication, and typed failover.
///
/// Runs until SIGINT/SIGTERM (or `--duration-s`), then drains: the
/// listener closes, in-flight proxied requests finish, and the final
/// router snapshot (per-backend health, failovers, breaker state,
/// forward latency) is printed (and written to `--metrics-json` /
/// `--prom-file` if given).
///
/// Usage:
///   permd_router --backends 127.0.0.1:7001,127.0.0.1:7002,...
///                [--host 127.0.0.1] [--port 0] [--port-file <path>]
///                [--replication 2] [--virtual-nodes 64]
///                [--probe-interval-ms 250] [--probe-timeout-ms 1000]
///                [--eject-after 2] [--breaker-threshold 5]
///                [--breaker-cooldown-ms 1000]
///                [--failover-backoff-ms 2] [--failover-backoff-cap-ms 50]
///                [--max-connections 256] [--max-payload-mb 64]
///                [--max-plans 4096]
///                [--connect-timeout-ms 1000] [--io-timeout-ms 30000]
///                [--distributed-max-bytes 0] [--distributed-max-shards 8]
///                [--distributed-width 32]
///                [--duration-s 0] [--metrics-json <path>] [--json]
///                [--prom-file <path>]
///
/// `--distributed-max-bytes B` (B > 0) enables distributed permutation:
/// a PERMUTE whose element bytes exceed B is split into row bands
/// across the healthy backends (SHARD_EXEC + peer-to-peer SHARD_XCHG)
/// instead of forwarded to a single backend. `--distributed-width` must
/// match the shards' machine width (permd_serve's default model).
///
/// `--prom-file` rewrites the Prometheus text exposition roughly once
/// per second while serving (textfile-collector style, atomic rename)
/// and once more after the drain — the chaos CI smoke reads
/// `hmm_router_failovers_total` and the per-backend counters from it.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/router.hpp"
#include "net/socket.hpp"
#include "util/cli.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

/// "host:port,host:port,..." -> addresses. Returns false (with a
/// message on stderr) on any malformed entry.
bool parse_backends(const std::string& spec, std::vector<hmm::net::BackendAddress>& out) {
  std::stringstream ss(spec);
  std::string entry;
  while (std::getline(ss, entry, ',')) {
    if (entry.empty()) continue;
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= entry.size()) {
      std::cerr << "permd_router: malformed backend '" << entry << "' (want host:port)\n";
      return false;
    }
    const std::string port_str = entry.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port <= 0 || port > 65535) {
      std::cerr << "permd_router: bad backend port in '" << entry << "'\n";
      return false;
    }
    out.push_back(hmm::net::BackendAddress{entry.substr(0, colon),
                                           static_cast<std::uint16_t>(port)});
  }
  if (out.empty()) {
    std::cerr << "permd_router: --backends needs at least one host:port\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmm;

  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"backends", "host", "port", "port-file", "replication",
                         "virtual-nodes", "probe-interval-ms", "probe-timeout-ms",
                         "eject-after", "breaker-threshold", "breaker-cooldown-ms",
                         "failover-backoff-ms", "failover-backoff-cap-ms",
                         "max-connections", "max-payload-mb", "max-plans",
                         "connect-timeout-ms", "io-timeout-ms", "distributed-max-bytes",
                         "distributed-max-shards", "distributed-width", "duration-s",
                         "metrics-json", "json", "prom-file"},
                        std::cerr)) {
    return 2;
  }

  net::Router::Config config;
  if (!parse_backends(cli.get("backends"), config.backends)) return 2;
  config.host = cli.get("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  config.replication = static_cast<std::uint32_t>(cli.get_int("replication", 2));
  config.virtual_nodes = static_cast<std::uint32_t>(cli.get_int("virtual-nodes", 64));
  config.probe_interval = std::chrono::milliseconds(cli.get_int("probe-interval-ms", 250));
  config.probe_timeout = std::chrono::milliseconds(cli.get_int("probe-timeout-ms", 1'000));
  config.eject_after = static_cast<std::uint32_t>(cli.get_int("eject-after", 2));
  config.breaker_threshold =
      static_cast<std::uint32_t>(cli.get_int("breaker-threshold", 5));
  config.breaker_cooldown =
      std::chrono::milliseconds(cli.get_int("breaker-cooldown-ms", 1'000));
  config.failover_backoff_base =
      std::chrono::milliseconds(cli.get_int("failover-backoff-ms", 2));
  config.failover_backoff_cap =
      std::chrono::milliseconds(cli.get_int("failover-backoff-cap-ms", 50));
  config.max_connections = static_cast<std::uint32_t>(cli.get_int("max-connections", 256));
  config.max_payload_bytes =
      static_cast<std::uint32_t>(cli.get_int("max-payload-mb", 64) << 20);
  config.max_plans = static_cast<std::uint32_t>(cli.get_int("max-plans", 4096));
  config.connect_timeout =
      std::chrono::milliseconds(cli.get_int("connect-timeout-ms", 1'000));
  config.io_timeout = std::chrono::milliseconds(cli.get_int("io-timeout-ms", 30'000));
  config.distributed_max_bytes =
      static_cast<std::uint64_t>(cli.get_int("distributed-max-bytes", 0));
  config.distributed_max_shards =
      static_cast<std::uint32_t>(cli.get_int("distributed-max-shards", 8));
  config.distributed_width =
      static_cast<std::uint32_t>(cli.get_int("distributed-width", 32));
  const std::int64_t duration_s = cli.get_int("duration-s", 0);
  const std::string port_file = cli.get("port-file");
  const std::string metrics_json = cli.get("metrics-json");
  const bool json = cli.get_bool("json");
  const std::string prom_file = cli.get("prom-file");

  net::ignore_sigpipe();
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  net::Router router(std::move(config));
  if (runtime::Status s = router.start(); !s.is_ok()) {
    std::cerr << "permd_router: " << s.to_string() << "\n";
    return 1;
  }
  std::cout << "permd_router: listening on " << cli.get("host", "127.0.0.1") << ":"
            << router.port() << "  (" << router.snapshot().backends.size()
            << " backends)" << std::endl;

  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << router.port() << "\n";
    if (!pf) {
      std::cerr << "permd_router: cannot write --port-file " << port_file << "\n";
      router.stop();
      return 1;
    }
  }

  // Atomic-rename exposition writer, same contract as permd_serve:
  // scrapers must never read a half-written file.
  const auto write_prom = [&prom_file](const net::Router::Snapshot& snapshot) -> bool {
    if (prom_file.empty()) return true;
    const std::string tmp = prom_file + ".tmp";
    {
      std::ofstream pf(tmp);
      pf << snapshot.to_prometheus();
      if (!pf) return false;
    }
    return std::rename(tmp.c_str(), prom_file.c_str()) == 0;
  };

  const auto started = std::chrono::steady_clock::now();
  auto last_prom = started;
  while (g_stop == 0) {
    const auto now = std::chrono::steady_clock::now();
    if (duration_s > 0 && now - started >= std::chrono::seconds(duration_s)) {
      break;
    }
    if (!prom_file.empty() && now - last_prom >= std::chrono::seconds(1)) {
      (void)write_prom(router.snapshot());
      last_prom = now;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "permd_router: draining..." << std::endl;
  router.stop();

  const net::Router::Snapshot snap = router.snapshot();
  std::cout << "\nrouted " << snap.requests_total << " requests; failovers "
            << snap.failovers_total << " (retry-later " << snap.retry_later_failovers
            << "); breaker short-circuits " << snap.breaker_short_circuits
            << "; no-backend " << snap.no_backend_available << "; plans "
            << snap.plans_registered << " (lazy resyncs " << snap.plan_resyncs << ")\n";
  if (snap.dist_requests > 0 || snap.dist_failures > 0) {
    std::cout << "distributed: " << snap.dist_requests << " requests ("
              << snap.dist_failures << " failed), " << snap.dist_bytes
              << " element bytes sharded\n";
  }
  for (const net::Router::BackendStats& b : snap.backends) {
    std::cout << "  " << b.backend << (b.healthy ? "  healthy" : "  EJECTED")
              << (b.breaker_open ? " breaker-open" : "") << "  requests " << b.requests
              << " ok " << b.ok << " transport-failures " << b.transport_failures
              << " failovers-to " << b.failovers_to << " ejections " << b.ejections
              << " recoveries " << b.recoveries << " plans-synced " << b.plans_synced
              << "\n";
  }
  if (json) std::cout << snap.to_json() << "\n";
  if (!metrics_json.empty()) {
    std::ofstream mf(metrics_json);
    mf << snap.to_json() << "\n";
    if (!mf) {
      std::cerr << "permd_router: cannot write --metrics-json " << metrics_json << "\n";
      return 1;
    }
  }
  if (!write_prom(snap)) {
    std::cerr << "permd_router: cannot write --prom-file " << prom_file << "\n";
    return 1;
  }
  return 0;
}
