#!/usr/bin/env bash
# Regenerate every experiment recorded in EXPERIMENTS.md.
#
# Usage: tools/run_all_experiments.sh [build-dir] [results-dir] [--full]
#   build-dir    default: build
#   results-dir  default: results
#   --full       paper-size runs (Table II up to 4M, Table III 1000 x 4M —
#                slow on a laptop; omit for the quick shapes-only pass)

set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results}"
FULL=""
for arg in "$@"; do
  [ "$arg" = "--full" ] && FULL="--full"
done

mkdir -p "$OUT"
BENCH="$BUILD/bench"

run() {
  local name="$1"; shift
  echo "== $name $*"
  "$BENCH/$name" "$@" | tee "$OUT/$name.txt"
}

run bench_table1_rounds --n 65536
run bench_table2 --type both $FULL
run bench_table3_random ${FULL:+--full}
run bench_fig3_pipeline
run bench_fig5_coloring
run bench_distribution --n 1M
run bench_ablation_l2 --max 2M
run bench_ablation_columnwise --max 1M
run bench_ablation_passes --n 1M
run bench_plan_build --max 1M
run bench_shared_permutation
run bench_app_fft --n 64K
run bench_app_sorting --n 16K
run bench_ablation_omega
run bench_ablation_blockcap --max 8M
run bench_ablation_packed --n 1M
run bench_app_scan --max 128K
run bench_machine_sweep --n 1M

# Runtime serving layer: cold/warm plan acquisition + batched execution.
# The JSON-lines rows also land in $OUT/BENCH_runtime_cache.json for the
# cross-PR performance trajectory.
RUNTIME_MAX=1M
[ -n "$FULL" ] && RUNTIME_MAX=4M
run bench_runtime_cache --max "$RUNTIME_MAX"
"$BENCH/bench_runtime_cache" --max 1M --json | grep '^{' > "$OUT/BENCH_runtime_cache.json"

# Service replay: Zipf trace through the plan cache + async executor.
echo "== permd_replay"
"$BUILD/tools/permd_replay" --n 64K --perms 24 --requests 400 --verify --json \
  | tee "$OUT/permd_replay.txt"

# google-benchmark microbenches (machine-speed dependent; kept brief).
"$BENCH/bench_kernels" --benchmark_min_time=0.05 | tee "$OUT/bench_kernels.txt"
"$BENCH/bench_ablation_coloring" --benchmark_min_time=0.05 | tee "$OUT/bench_ablation_coloring.txt"
"$BENCH/bench_ablation_tile" --benchmark_min_time=0.05 | tee "$OUT/bench_ablation_tile.txt"

echo
echo "All outputs in $OUT/"
