/// \file permd_loadgen.cpp
/// \brief Closed-loop load generator for permd_serve: N concurrent
///        connections replaying a Zipf-distributed plan mix, with
///        client-side latency percentiles and a typed error taxonomy.
///
/// Each worker owns one connection (the protocol is request/response
/// per connection) and loops: sample a plan by Zipf rank, send a
/// PERMUTE carrying fresh data, verify the response against the local
/// ground truth, record the latency. Typed rejections the serving
/// stack is *supposed* to produce under pressure — RETRY_LATER,
/// DEADLINE_EXCEEDED — are counted, not failed: the run only fails on
/// garbled/hung connections (transport or framing errors), malformed
/// responses, or wrong data. That is exactly the acceptance bar for
/// chaos runs: every request gets a well-formed typed answer.
///
/// Usage:
///   permd_loadgen --port P [--host 127.0.0.1] [--connections 4]
///                 [--requests 100] [--duration-s 0] [--n 16K]
///                 [--perms 12] [--zipf 1.0] [--seed 42]
///                 [--deadline-ms 0] [--timeout-ms 30000] [--json]
///                 [--require-batching] [--program-depth 0]
///                 [--program-staged false] [--retry-later-max 0]
///                 [--router] [--distributed] [--max-payload-mb 64]
///
/// `--retry-later-max k` (k > 0) resends a request that came back
/// RETRY_LATER up to k times (exponential pause between attempts)
/// before recording the final outcome. Resends are tallied separately
/// (`retry_later retries`); the per-request taxonomy still counts one
/// final code per request. This is the knob chaos fleet runs use: a
/// router failing over around a killed backend may legitimately answer
/// RETRY_LATER for a beat, and the run should press on, not give up.
///
/// `--router` declares the target a permd_router, not a permd_serve:
/// the final STATS fetch is reported as the router's fleet snapshot
/// (failovers, breaker short-circuits, per-backend health) instead of
/// the single-server phase breakdown.
///
/// `--program-depth k` (k > 0) switches every request from PERMUTE to
/// EXECUTE_PROGRAM carrying a depth-k chain of Zipf-sampled registered
/// plans — one round trip does k permutations' work. Responses are
/// spot-verified against the chained ground truth (index-chasing
/// through each stage mapping: O(1) per checked index, no composed
/// table on the client). `--program-staged true` forces the server's
/// staged path.
///
/// `--requests` is per connection; `--duration-s` (if > 0) stops the
/// run early. The final report includes the server's own
/// ServiceMetrics::to_json() snapshot, so one loadgen run captures
/// both sides of the wire.
///
/// `--require-batching` turns the run into a batching smoke: it fails
/// (exit 1) unless the server's final STATS report shows at least one
/// fused batch executed AND a nonzero buffer-pool hit count — the CI
/// guard that the hot-path machinery is actually engaged, not silently
/// bypassed.
///
/// `--distributed` (implies --router) turns the run into a distributed
/// smoke: it fails (exit 1) unless the router's final STATS report a
/// nonzero `distributed_requests` — the guard that requests sized above
/// the router's --distributed-max-bytes actually took the sharded path
/// (SHARD_EXEC fan-out + peer exchange), not the single-node fallback.

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/socket.hpp"
#include "perm/generators.hpp"
#include "perm/permutation.hpp"
#include "runtime/metrics.hpp"
#include "runtime/phase.hpp"
#include "runtime/program.hpp"
#include "runtime/status.hpp"
#include "util/bits.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hmm;

/// Same population shape as permd_replay: a few named hot families,
/// then a tail of independent random permutations.
perm::Permutation make_member(std::uint64_t rank, std::uint64_t n, std::uint64_t seed) {
  const bool even_log2 = util::log2_exact(n) % 2 == 0;
  static const std::vector<std::string> named = {"bit-reversal", "shuffle", "transpose",
                                                 "gray", "butterfly", "unshuffle"};
  if (rank < named.size()) {
    const std::string& family =
        (named[rank] == "butterfly" && !even_log2) ? "rotation" : named[rank];
    return perm::by_name(family, n, seed);
  }
  return perm::by_name("random", n, seed + rank);
}

/// Zipf(s) sampler over ranks [0, k) via inverse-CDF binary search.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t k, double s) : cdf_(k) {
    double total = 0;
    for (std::uint64_t r = 0; r < k; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  std::uint64_t operator()(util::Xoshiro256& rng) const {
    const double u = rng.uniform01();
    std::uint64_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::uint64_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

/// Shared tallies; one slot per StatusCode plus run-failing categories.
struct Tally {
  static constexpr int kCodes = 7;  // StatusCode values 0..6
  std::array<std::atomic<std::uint64_t>, kCodes> by_code{};
  std::atomic<std::uint64_t> verify_failures{0};
  /// Resends triggered by RETRY_LATER under --retry-later-max; kept
  /// out of by_code so each request still contributes exactly one
  /// final outcome to the taxonomy.
  std::atomic<std::uint64_t> retry_later_retries{0};
  runtime::LogHistogram latency_ns;

  void record(runtime::StatusCode code) {
    const int c = static_cast<int>(code);
    by_code[static_cast<std::size_t>(c < kCodes ? c : kCodes - 1)].fetch_add(
        1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count(runtime::StatusCode code) const {
    return by_code[static_cast<std::size_t>(code)].load(std::memory_order_relaxed);
  }
};

/// Pull `"key":<u64>` out of a flat JSON dump. Good enough for the
/// metrics snapshot this tool itself requested; not a JSON parser.
bool scrape_u64(const std::string& json, std::string_view key, std::uint64_t& out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  const char* p = json.c_str() + at + needle.size();
  if (*p < '0' || *p > '9') return false;
  out = std::strtoull(p, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"host", "port", "connections", "requests", "duration-s", "n", "perms",
                         "zipf", "seed", "deadline-ms", "timeout-ms", "json",
                         "require-batching", "program-depth", "program-staged",
                         "retry-later-max", "router", "distributed", "max-payload-mb"},
                        std::cerr)) {
    return 2;
  }
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  if (port == 0) {
    std::cerr << "permd_loadgen: --port is required\n";
    return 2;
  }
  const std::string host = cli.get("host", "127.0.0.1");
  const std::uint64_t connections = static_cast<std::uint64_t>(cli.get_int("connections", 4));
  const std::uint64_t requests_per_conn =
      static_cast<std::uint64_t>(cli.get_int("requests", 100));
  const std::int64_t duration_s = cli.get_int("duration-s", 0);
  const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", 16 << 10));
  const std::uint64_t num_perms = static_cast<std::uint64_t>(cli.get_int("perms", 12));
  const double zipf_s = cli.get_double("zipf", 1.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::int64_t deadline_ms = cli.get_int("deadline-ms", 0);
  const std::int64_t timeout_ms = cli.get_int("timeout-ms", 30'000);
  const bool json = cli.get_bool("json");
  const bool require_batching = cli.get_bool("require-batching");
  const std::uint64_t program_depth =
      static_cast<std::uint64_t>(cli.get_int("program-depth", 0));
  const bool program_staged = cli.get_bool("program-staged");
  const std::int64_t retry_later_max = cli.get_int("retry-later-max", 0);
  const bool distributed = cli.get_bool("distributed");
  const bool router_mode = cli.get_bool("router") || distributed;

  if (program_depth > runtime::kMaxProgramOps) {
    std::cerr << "permd_loadgen: --program-depth exceeds the protocol op cap ("
              << runtime::kMaxProgramOps << ")\n";
    return 2;
  }

  if (!util::is_pow2(n) || n < 64) {
    std::cerr << "permd_loadgen: --n must be a power of two >= 64 (got " << n << ")\n";
    return 2;
  }
  if (connections == 0 || num_perms == 0) {
    std::cerr << "permd_loadgen: --connections and --perms must be positive\n";
    return 2;
  }

  net::ignore_sigpipe();

  net::Client::Config client_config;
  client_config.host = host;
  client_config.port = port;
  client_config.io_timeout = std::chrono::milliseconds(timeout_ms);
  client_config.max_payload_bytes =
      static_cast<std::uint32_t>(cli.get_int("max-payload-mb", 64) << 20);

  // Register the whole population once up front; workers share the ids
  // (and the server's PlanCache shares the compiled plans).
  std::vector<perm::Permutation> population;
  std::vector<std::uint64_t> plan_ids;
  population.reserve(num_perms);
  plan_ids.reserve(num_perms);
  {
    net::Client setup(client_config);
    for (std::uint64_t r = 0; r < num_perms; ++r) {
      population.push_back(make_member(r, n, seed));
      runtime::StatusOr<std::uint64_t> id = setup.submit_plan(population.back());
      if (!id.ok()) {
        std::cerr << "permd_loadgen: SUBMIT_PLAN " << r
                  << " failed: " << id.status().to_string() << "\n";
        return 1;
      }
      plan_ids.push_back(id.value());
    }
  }

  std::cout << "permd_loadgen: " << host << ":" << port << "  connections=" << connections
            << " requests/conn=" << requests_per_conn << " n=" << n << " perms=" << num_perms
            << " zipf=" << zipf_s;
  if (deadline_ms > 0) std::cout << " deadline=" << deadline_ms << "ms";
  if (program_depth > 0) {
    std::cout << " program-depth=" << program_depth << (program_staged ? " (staged)" : " (fused)");
  }
  std::cout << "\n";

  Tally tally;
  std::atomic<std::uint64_t> transport_failures{0};  // garbled/hung/torn connections
  std::atomic<bool> stop{false};
  const auto started = std::chrono::steady_clock::now();

  auto worker = [&](std::uint64_t worker_id) {
    // Per-worker trace prefix: the server's slow-request log can name
    // the connection a slow request came from.
    net::Client::Config worker_config = client_config;
    worker_config.trace_prefix = static_cast<std::uint32_t>(worker_id + 1);
    net::Client client(worker_config);
    util::Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ull * (worker_id + 1)));
    ZipfSampler sample(num_perms, zipf_s);
    std::vector<std::uint32_t> a(n), b(n);

    std::vector<std::uint64_t> chain(program_depth);
    std::vector<runtime::ProgramOp> ops(program_depth);

    for (std::uint64_t r = 0; r < requests_per_conn && !stop.load(std::memory_order_relaxed);
         ++r) {
      const std::uint64_t rank = sample(rng);
      const auto stamp = static_cast<std::uint32_t>(rng.next());
      for (std::uint64_t i = 0; i < n; ++i) {
        a[i] = stamp + static_cast<std::uint32_t>(i);
      }
      util::Stopwatch sw;
      runtime::Status s = runtime::Status::ok();
      if (program_depth > 0) {
        // A depth-k chain of Zipf-sampled registered plans; one
        // EXECUTE_PROGRAM round trip does k permutations' work. Sampled
        // once per request, outside the RETRY_LATER loop: a resend is
        // the same request.
        for (std::uint64_t d = 0; d < program_depth; ++d) {
          chain[d] = sample(rng);
          ops[d] = {runtime::ProgramOpCode::kPermute, plan_ids[chain[d]]};
        }
      }
      for (std::int64_t attempt = 0;; ++attempt) {
        if (program_depth > 0) {
          s = client.execute_program({ops.data(), ops.size()}, {a.data(), n}, {b.data(), n},
                                     std::chrono::milliseconds(deadline_ms), program_staged);
        } else {
          s = client.permute(plan_ids[rank], {a.data(), n}, {b.data(), n},
                             std::chrono::milliseconds(deadline_ms));
        }
        if (s.code() != runtime::StatusCode::kResourceExhausted || attempt >= retry_later_max ||
            stop.load(std::memory_order_relaxed)) {
          break;
        }
        tally.retry_later_retries.fetch_add(1, std::memory_order_relaxed);
        // The server asked for "later": capped exponential pause, not a
        // hot resend loop.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1LL << std::min<std::int64_t>(attempt, 6)));
      }
      tally.latency_ns.record(static_cast<std::uint64_t>(sw.nanos()));
      tally.record(s.code());
      if (s.is_ok()) {
        // Spot-check the permuted image (full check would dominate).
        if (program_depth > 0) {
          // Chase each checked index through the chain: stage d moves
          // position idx to P_d(idx), so the final resting place of
          // a[i] is P_k(...P_1(i)...) — O(depth) per index, no composed
          // table needed client-side.
          for (std::uint64_t i = 0; i < n; i += 97) {
            std::uint64_t idx = i;
            for (std::uint64_t d = 0; d < program_depth; ++d) {
              idx = population[chain[d]](idx);
            }
            if (b[idx] != a[i]) {
              tally.verify_failures.fetch_add(1, std::memory_order_relaxed);
              break;
            }
          }
        } else {
          const perm::Permutation& p = population[rank];
          for (std::uint64_t i = 0; i < n; i += 97) {
            if (b[p(i)] != a[i]) {
              tally.verify_failures.fetch_add(1, std::memory_order_relaxed);
              break;
            }
          }
        }
      } else if (s.code() == runtime::StatusCode::kUnavailable ||
                 s.code() == runtime::StatusCode::kInvalidArgument) {
        // Typed pressure responses (RETRY_LATER, DEADLINE_EXCEEDED) are
        // expected under chaos; a dead/garbled connection or a request
        // the server calls malformed is a real failure.
        transport_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (std::uint64_t w = 0; w < connections; ++w) workers.emplace_back(worker, w);
  if (duration_s > 0) {
    while (std::chrono::steady_clock::now() - started < std::chrono::seconds(duration_s)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    stop.store(true, std::memory_order_relaxed);
  }
  for (std::thread& t : workers) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();

  using runtime::StatusCode;
  const std::uint64_t total = tally.latency_ns.count();
  const std::uint64_t ok = tally.count(StatusCode::kOk);

  util::Table report({"metric", "value"});
  report.add_row({"requests", util::format_count(total)});
  report.add_row({"throughput",
                  util::format_double(static_cast<double>(total) / wall_s, 1) + " req/s"});
  report.add_row({"latency p50",
                  util::format_ms(static_cast<double>(tally.latency_ns.quantile(0.5)) / 1e6) +
                      " ms"});
  report.add_row({"latency p99",
                  util::format_ms(static_cast<double>(tally.latency_ns.quantile(0.99)) / 1e6) +
                      " ms"});
  report.add_row({"latency max",
                  util::format_ms(static_cast<double>(tally.latency_ns.max()) / 1e6) + " ms"});
  report.add_separator();
  report.add_row({"ok", util::format_count(ok)});
  report.add_row({"retry_later", util::format_count(tally.count(StatusCode::kResourceExhausted))});
  if (retry_later_max > 0) {
    report.add_row({"retry_later retries",
                    util::format_count(tally.retry_later_retries.load())});
  }
  report.add_row({"deadline_exceeded",
                  util::format_count(tally.count(StatusCode::kDeadlineExceeded))});
  report.add_row({"plan_build_failed",
                  util::format_count(tally.count(StatusCode::kPlanBuildFailed))});
  report.add_row({"cancelled", util::format_count(tally.count(StatusCode::kCancelled))});
  report.add_row({"invalid_argument",
                  util::format_count(tally.count(StatusCode::kInvalidArgument))});
  report.add_row({"unavailable", util::format_count(tally.count(StatusCode::kUnavailable))});
  report.add_row({"transport/protocol failures",
                  util::format_count(transport_failures.load())});
  report.add_row({"verify failures", util::format_count(tally.verify_failures.load())});
  report.print(std::cout);

  // The server-side half of the story: the same metrics a scraper
  // would export, fetched over the wire it describes.
  net::Client stats_client(client_config);
  runtime::StatusOr<std::string> server_stats = stats_client.stats_json();
  if (server_stats.ok() && router_mode) {
    // Fleet-side half of the story: what the router did to keep the
    // run alive (failovers, breaker trips, lazy plan resyncs).
    std::uint64_t routed = 0, failovers = 0, shorted = 0, no_backend = 0, resyncs = 0;
    std::uint64_t dist = 0, dist_failed = 0;
    (void)scrape_u64(server_stats.value(), "requests_total", routed);
    (void)scrape_u64(server_stats.value(), "failovers_total", failovers);
    (void)scrape_u64(server_stats.value(), "breaker_short_circuits", shorted);
    (void)scrape_u64(server_stats.value(), "no_backend_available", no_backend);
    (void)scrape_u64(server_stats.value(), "plan_resyncs", resyncs);
    (void)scrape_u64(server_stats.value(), "distributed_requests", dist);
    (void)scrape_u64(server_stats.value(), "distributed_failures", dist_failed);
    std::cout << "\nrouter: routed " << routed << " requests, failovers " << failovers
              << ", breaker short-circuits " << shorted << ", no-backend " << no_backend
              << ", plan resyncs " << resyncs << ", distributed " << dist << " ("
              << dist_failed << " failed)\n";
    if (json) std::cout << server_stats.value() << "\n";
  } else if (server_stats.ok()) {
    // Where the server says the time went, phase by phase — the
    // breakdown that pairs with the client-side latency percentiles
    // above.
    const std::vector<runtime::PhaseScrape> phases =
        runtime::scrape_phases_json(server_stats.value());
    if (!phases.empty()) {
      std::cout << "\nserver-side phase breakdown:\n";
      util::Table phase_table({"phase", "count", "p50", "p95", "max"});
      for (const runtime::PhaseScrape& row : phases) {
        phase_table.add_row({row.label, util::format_count(row.count),
                             util::format_ms(static_cast<double>(row.p50) / 1e6) + " ms",
                             util::format_ms(static_cast<double>(row.p95) / 1e6) + " ms",
                             util::format_ms(static_cast<double>(row.max) / 1e6) + " ms"});
      }
      phase_table.print(std::cout);
    }
    if (json) std::cout << server_stats.value() << "\n";
  } else {
    std::cerr << "permd_loadgen: STATS fetch failed: " << server_stats.status().to_string()
              << "\n";
  }

  const bool failed = transport_failures.load() > 0 || tally.verify_failures.load() > 0 ||
                      !server_stats.ok() || total == 0;
  if (failed) {
    std::cerr << "permd_loadgen: FAILED (garbled/hung connections, wrong data, or no "
                 "requests completed)\n";
    return 1;
  }
  if (require_batching) {
    std::uint64_t batches = 0, pool_hits = 0;
    // "hits" also names the plan-cache counter, so anchor the pool
    // scrape at its own object.
    const std::size_t pool_at = server_stats.value().find("\"pool\":{");
    const bool scraped = scrape_u64(server_stats.value(), "batches_executed", batches) &&
                         pool_at != std::string::npos &&
                         scrape_u64(server_stats.value().substr(pool_at), "hits", pool_hits);
    std::cout << "batching smoke: batches_executed=" << batches << " pool_hits=" << pool_hits
              << "\n";
    if (!scraped || batches == 0 || pool_hits == 0) {
      std::cerr << "permd_loadgen: FAILED --require-batching (server reports no fused "
                   "batches or no buffer-pool hits; hot-path machinery not engaged)\n";
      return 1;
    }
  }
  if (distributed) {
    std::uint64_t dist = 0;
    const bool scraped = scrape_u64(server_stats.value(), "distributed_requests", dist);
    std::cout << "distributed smoke: distributed_requests=" << dist << "\n";
    if (!scraped || dist == 0) {
      std::cerr << "permd_loadgen: FAILED --distributed (the router served every request "
                   "single-node; sharded path not engaged)\n";
      return 1;
    }
  }
  std::cout << "permd_loadgen: all " << total
            << " requests received well-formed typed responses (" << ok << " ok)\n";
  return 0;
}
