/// \file permd_serve.cpp
/// \brief The permutation service daemon: `net::Server` over a
///        `RobustPermuteService`, with the same chaos/admission knobs
///        as permd_replay.
///
/// Runs until SIGINT/SIGTERM (or `--duration-s`), then drains
/// gracefully: the listener closes, every connection finishes the
/// request it is serving, the executor goes idle, and the final
/// ServiceMetrics snapshot is printed (and written to `--metrics-json`
/// if given, for CI trend tracking).
///
/// SIGPIPE is ignored process-wide: a client that disappears mid-
/// response is a per-connection event (EPIPE/ECONNRESET surface as
/// typed Status inside the net layer), never a reason to die.
///
/// Usage:
///   permd_serve [--host 127.0.0.1] [--port 0] [--port-file <path>]
///               [--cache-mb 64] [--max-in-flight 0] [--reject]
///               [--max-connections 256] [--max-payload-mb 64]
///               [--io-threads 2] [--handler-threads 0]
///               [--io-timeout-ms 30000] [--idle-timeout-ms 0]
///               [--duration-s 0]
///               [--metrics-json <path>] [--json]
///               [--prom-file <path>] [--slow-ms 0]
///               [--batch-max 1] [--batch-delay-us 200]
///               [--fault-rate 0.0] [--fault-seed 1]
///               [--fault-sites plan_cache.build] [--fault-stall-ms 50]
///
/// `--io-threads N` sets the number of epoll reactor threads that own
/// the connections (nonblocking frame assembly + response flushing);
/// idle connections cost a map entry, not a thread, so the default of
/// 2 carries 10k+ connections. `--handler-threads N` bounds concurrent
/// request execution (0 = auto: max(16, 2 x hardware threads)).
///
/// `--batch-max N` (N > 1) turns on same-plan request batching in the
/// executor: up to N queued PERMUTEs that share a compiled plan run as
/// one fused kernel sweep, gathered for at most `--batch-delay-us`.
///
/// `--prom-file` rewrites the Prometheus text exposition roughly once
/// per second while serving (textfile-collector style) and once more
/// after the drain; `--slow-ms N` arms the rate-limited slow-request
/// log for requests whose attributed phase time reaches N ms.
///
/// `--port 0` binds an ephemeral port; `--port-file` writes the bound
/// port (one line) once listening, which is how scripted runs and the
/// CI loopback smoke find the server.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "cpu/dispatch.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/metrics.hpp"
#include "runtime/service.hpp"
#include "util/cli.hpp"
#include "util/numa.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace hmm;

  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"host", "port", "port-file", "cache-mb", "max-in-flight", "reject",
                         "max-connections", "max-payload-mb", "io-threads", "handler-threads",
                         "io-timeout-ms",
                         "idle-timeout-ms", "shard-exchange-timeout-ms", "duration-s",
                         "metrics-json", "json", "prom-file", "slow-ms", "batch-max",
                         "batch-delay-us", "fault-rate", "fault-seed", "fault-sites",
                         "fault-stall-ms"},
                        std::cerr)) {
    return 2;
  }
  const std::string host = cli.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  const std::string port_file = cli.get("port-file");
  const std::uint64_t cache_bytes =
      static_cast<std::uint64_t>(cli.get_int("cache-mb", 64)) << 20;
  const std::uint64_t max_in_flight =
      static_cast<std::uint64_t>(cli.get_int("max-in-flight", 0));
  const bool reject = cli.get_bool("reject");
  const auto max_connections = static_cast<std::uint32_t>(cli.get_int("max-connections", 256));
  const auto max_payload_bytes =
      static_cast<std::uint32_t>(cli.get_int("max-payload-mb", 64) << 20);
  const auto io_threads = static_cast<std::uint32_t>(cli.get_int("io-threads", 2));
  const auto handler_threads = static_cast<std::uint32_t>(cli.get_int("handler-threads", 0));
  const std::int64_t io_timeout_ms = cli.get_int("io-timeout-ms", 30'000);
  const std::int64_t idle_timeout_ms = cli.get_int("idle-timeout-ms", 0);
  const std::int64_t duration_s = cli.get_int("duration-s", 0);
  const std::string metrics_json = cli.get("metrics-json");
  const bool json = cli.get_bool("json");
  const std::string prom_file = cli.get("prom-file");
  const std::int64_t slow_ms = cli.get_int("slow-ms", 0);
  const std::int64_t batch_max = cli.get_int("batch-max", 1);
  const std::int64_t batch_delay_us = cli.get_int("batch-delay-us", 200);
  const double fault_rate = cli.get_double("fault-rate", 0.0);
  const std::uint64_t fault_seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));
  const std::string fault_sites =
      cli.get("fault-sites", std::string(runtime::fault_sites::kPlanBuild));
  const std::uint64_t fault_stall_ms =
      static_cast<std::uint64_t>(cli.get_int("fault-stall-ms", 50));

  // A dead client must never kill the daemon (satellite: no SIGPIPE
  // anywhere in the serving path); stop signals drain gracefully.
  net::ignore_sigpipe();
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  if (fault_rate > 0.0) {
    runtime::FaultInjector::Config faults;
    faults.enabled = true;
    faults.seed = fault_seed;
    faults.rate = fault_rate;
    faults.stall_ms = static_cast<std::uint32_t>(fault_stall_ms);
    faults.sites = fault_sites;
    runtime::FaultInjector::instance().configure(faults);
  }

  auto& pool = util::ThreadPool::global();
  runtime::RobustPermuteService::Config service_config;
  service_config.cache.max_bytes = cache_bytes;
  service_config.executor.max_in_flight = max_in_flight;
  service_config.executor.admission =
      reject ? runtime::Executor::Admission::kReject : runtime::Executor::Admission::kBlock;
  if (slow_ms > 0) {
    service_config.executor.slow_log_threshold = std::chrono::milliseconds(slow_ms);
  }
  if (batch_max > 1) {
    service_config.executor.batch.max_batch = static_cast<std::uint32_t>(batch_max);
    service_config.executor.batch.max_delay = std::chrono::microseconds(batch_delay_us);
  }
  runtime::RobustPermuteService service(pool, service_config);

  net::Server::Config server_config;
  server_config.host = host;
  server_config.port = port;
  server_config.max_connections = max_connections;
  server_config.max_payload_bytes = max_payload_bytes;
  server_config.io_threads = io_threads;
  server_config.handler_threads = handler_threads;
  server_config.io_timeout = std::chrono::milliseconds(io_timeout_ms);
  server_config.idle_timeout = std::chrono::milliseconds(idle_timeout_ms);
  server_config.shard_exchange_timeout =
      std::chrono::milliseconds(cli.get_int("shard-exchange-timeout-ms", 10'000));
  net::Server server(service, server_config);

  if (runtime::Status s = server.start(); !s.is_ok()) {
    std::cerr << "permd_serve: " << s.to_string() << "\n";
    return 1;
  }
  std::cout << "permd_serve: listening on " << host << ":" << server.port() << "  (io="
            << io_threads << " reactors, pool=" << pool.size()
            << " threads, cache=" << util::format_bytes(cache_bytes);
  if (batch_max > 1) {
    std::cout << ", batching max=" << batch_max << " delay=" << batch_delay_us << "us";
  }
  if (fault_rate > 0.0) {
    std::cout << ", chaos rate=" << fault_rate << " seed=" << fault_seed;
  }
  std::cout << ")" << std::endl;

  // Attribution line: which kernel tier the dispatcher picked (and what
  // the CPU could have run) plus the NUMA layout, so every bench row or
  // latency report against this process names the code path that served it.
  {
    const cpu::CpuFeatures& feat = cpu::cpu_features();
    std::cout << "permd_serve: kernels=" << cpu::to_string(cpu::kernel_variant())
              << " (cpu supports:" << (feat.avx512 ? " avx512" : "")
              << (feat.avx2 ? " avx2" : "") << " scalar)"
              << ", numa nodes=" << util::numa::node_count()
              << (pool.workers_pinned() ? ", workers pinned per node"
                                        : ", workers unpinned")
              << std::endl;
  }

  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << server.port() << "\n";
    if (!pf) {
      std::cerr << "permd_serve: cannot write --port-file " << port_file << "\n";
      server.stop();
      return 1;
    }
  }

  // Atomic-rename exposition writer: scrapers (and the CI smoke) must
  // never read a half-written file.
  const auto write_prom = [&prom_file](const runtime::MetricsSnapshot& snapshot) -> bool {
    if (prom_file.empty()) return true;
    const std::string tmp = prom_file + ".tmp";
    {
      std::ofstream pf(tmp);
      pf << snapshot.to_prometheus();
      if (!pf) return false;
    }
    return std::rename(tmp.c_str(), prom_file.c_str()) == 0;
  };

  const auto started = std::chrono::steady_clock::now();
  auto last_prom = started;
  while (g_stop == 0) {
    const auto now = std::chrono::steady_clock::now();
    if (duration_s > 0 && now - started >= std::chrono::seconds(duration_s)) {
      break;
    }
    if (!prom_file.empty() && now - last_prom >= std::chrono::seconds(1)) {
      (void)write_prom(service.metrics().snapshot());
      last_prom = now;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "permd_serve: draining..." << std::endl;
  server.stop();

  const net::Server::Counters counters = server.counters();
  const runtime::MetricsSnapshot snap = service.metrics().snapshot();
  std::cout << "\n";
  snap.to_table().print(std::cout);
  std::cout << "\nconnections accepted " << counters.connections_accepted << ", rejected "
            << counters.connections_rejected << "; requests ok " << counters.requests_ok
            << ", error " << counters.requests_error << "; protocol errors "
            << counters.protocol_errors << "; plans registered " << counters.plans_registered
            << "; idle closed " << counters.idle_closed << "\n";
  if (fault_rate > 0.0) {
    std::cout << "faults fired: " << runtime::FaultInjector::instance().total_fired() << "\n";
  }
  if (json) std::cout << snap.to_json() << "\n";
  if (!metrics_json.empty()) {
    std::ofstream mf(metrics_json);
    mf << snap.to_json() << "\n";
    if (!mf) {
      std::cerr << "permd_serve: cannot write --metrics-json " << metrics_json << "\n";
      return 1;
    }
  }
  if (!write_prom(snap)) {
    std::cerr << "permd_serve: cannot write --prom-file " << prom_file << "\n";
    return 1;
  }
  return 0;
}
