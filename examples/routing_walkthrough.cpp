/// \file routing_walkthrough.cpp
/// \brief Reproduces **Figure 6**: a step-by-step walkthrough of how a
///        16-element permutation is routed through the three passes —
///        row-wise (to color columns), column-wise (to destination
///        rows), row-wise (to destination columns).
///
/// Prints the 4x4 matrix of destination coordinates after every pass,
/// exactly like the paper's figure, for any small permutation.
///
/// Run: ./routing_walkthrough [--n 16] [--family random] [--seed 4]

#include <iomanip>
#include <iostream>

#include "core/plan.hpp"
#include "perm/generators.hpp"
#include "util/cli.hpp"

namespace {

using namespace hmm;

/// Print the matrix of "(dest_row,dest_col)" labels for the element
/// currently at each position.
void print_state(const std::string& title, const std::vector<std::uint32_t>& elem_at,
                 std::uint64_t rows, std::uint64_t cols, const perm::Permutation& p) {
  std::cout << title << "\n";
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::cout << "  ";
    for (std::uint64_t j = 0; j < cols; ++j) {
      const std::uint32_t e = elem_at[i * cols + j];
      const std::uint64_t dest = p(e);
      std::cout << "(" << dest / cols << "," << dest % cols << ") ";
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 16);
  const std::string family = cli.get("family", "random");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 4));

  // A small machine whose width divides the tiny matrix.
  model::MachineParams mp = model::MachineParams::tiny(4, 5, 2);
  const perm::Permutation p = perm::by_name(family, n, seed);
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);
  const std::uint64_t r = plan.shape().rows;
  const std::uint64_t m = plan.shape().cols;

  std::cout << "Figure 6 walkthrough: " << family << " permutation of " << n
            << " elements as a " << r << "x" << m << " matrix.\n"
            << "Each cell shows the (dest_row, dest_col) of the element at that position.\n\n";

  std::vector<std::uint32_t> cur(n), next(n);
  for (std::uint64_t e = 0; e < n; ++e) cur[e] = static_cast<std::uint32_t>(e);
  print_state("Input", cur, r, m, p);

  auto row_pass = [&](const core::RowScheduleSet& set) {
    for (std::uint64_t row = 0; row < set.rows; ++row) {
      const auto phat = set.phat_row(row);
      const auto q = set.q_row(row);
      for (std::uint64_t k = 0; k < set.cols; ++k) {
        next[row * set.cols + q[k]] = cur[row * set.cols + phat[k]];
      }
    }
    std::swap(cur, next);
  };
  auto transpose = [&](std::uint64_t rows, std::uint64_t cols) {
    for (std::uint64_t i = 0; i < rows; ++i) {
      for (std::uint64_t j = 0; j < cols; ++j) next[j * rows + i] = cur[i * cols + j];
    }
    std::swap(cur, next);
  };

  row_pass(plan.pass1());
  print_state("\nAfter Step 1 (row-wise: each element in its color column — note every "
              "column now holds distinct dest rows)",
              cur, r, m, p);

  transpose(r, m);
  row_pass(plan.pass2());
  transpose(m, r);
  print_state("\nAfter Step 2 (column-wise: every element in its destination row)", cur, r,
              m, p);

  row_pass(plan.pass3());
  print_state("\nAfter Step 3 (row-wise: every element at its destination)", cur, r, m, p);

  // Verify: element at position pos must have dest == pos.
  bool ok = true;
  for (std::uint64_t pos = 0; pos < n; ++pos) ok &= (p(cur[pos]) == pos);
  std::cout << "\nPermutation realized exactly: " << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
