/// \file permutation_doctor.cpp
/// \brief CLI diagnosis of any permutation family on any machine:
///        everything the paper's cost theory predicts — distribution,
///        cycle structure, plan feasibility, per-strategy time, and the
///        model's recommendation.
///
/// Run: ./permutation_doctor [--family bit-reversal] [--n 1M]
///      [--width 32] [--latency 300] [--dmms 8] [--all]

#include <iostream>

#include "core/diagnose.hpp"
#include "perm/generators.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 1 << 20);
  model::MachineParams mp;
  mp.width = static_cast<std::uint32_t>(cli.get_int("width", 32));
  mp.latency = static_cast<std::uint32_t>(cli.get_int("latency", 300));
  mp.dmms = static_cast<std::uint32_t>(cli.get_int("dmms", 8));
  mp.validate();

  std::vector<std::string> families;
  if (cli.get_bool("all")) {
    families = perm::family_names();
  } else {
    families.push_back(cli.get("family", "bit-reversal"));
  }

  for (const auto& family : families) {
    std::cout << "=== " << family << " ===\n";
    const perm::Permutation p = perm::by_name(family, n, 42);
    core::print_diagnosis(std::cout, core::diagnose(p, mp));
    std::cout << "\n";
  }
  return 0;
}
