/// \file simulator_tour.cpp
/// \brief Tour of the HMM simulator: the machine layout (paper Figs. 1
///        and 2), the diagonal arrangement (Fig. 4), and a round-by-
///        round account of one scheduled permutation, showing each of
///        the 32 rounds with its classification and cost.
///
/// Run: ./simulator_tour [--n 1024] [--width 4] [--latency 10] [--dmms 2]

#include <iomanip>
#include <iostream>

#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "perm/generators.hpp"
#include "util/cli.hpp"

namespace hmm::model {
std::string describe(const MachineParams& p);  // machine.cpp
}

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 1024);
  model::MachineParams mp;
  mp.width = static_cast<std::uint32_t>(cli.get_int("width", 4));
  mp.latency = static_cast<std::uint32_t>(cli.get_int("latency", 10));
  mp.dmms = static_cast<std::uint32_t>(cli.get_int("dmms", 2));
  mp.validate();

  // --- Figs. 1 & 2: the machine ---------------------------------------
  std::cout << "Machine: " << model::describe(mp) << "\n"
            << "  " << mp.dmms << " DMMs (one per SM), each with " << mp.width
            << " shared-memory banks (latency 1);\n"
            << "  one UMM (global memory) with " << mp.width
            << "-cell address groups (latency " << mp.latency << ");\n"
            << "  warps of " << mp.width << " threads dispatched round-robin.\n";
  std::cout << "  bank(addr)  = addr mod " << mp.width << "   e.g. bank(13) = "
            << model::bank_of(13, mp.width) << "\n"
            << "  group(addr) = addr div " << mp.width << "   e.g. group(13) = "
            << model::group_of(13, mp.width) << "\n";

  // --- Fig. 4: the diagonal arrangement --------------------------------
  const std::uint32_t w = mp.width;
  std::cout << "\nDiagonal arrangement of a " << w << "x" << w
            << " tile (Fig. 4): cell [i][j] is stored at shared slot [i][(i+j) mod " << w
            << "]\n  -> every row AND every column of the tile occupies " << w
            << " distinct banks:\n";
  for (std::uint32_t i = 0; i < w; ++i) {
    std::cout << "    ";
    for (std::uint32_t s = 0; s < w; ++s) {
      // Which original [i][j] sits in slot s of row i? j = (s - i) mod w.
      const std::uint32_t j = (s + w - i) % w;
      std::cout << "[" << i << "," << j << "] ";
    }
    std::cout << "\n";
  }

  // --- Round-by-round account of one scheduled permutation ------------
  const perm::Permutation p = perm::bit_reversal(n);
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);
  sim::HmmSim sim(mp);
  const std::uint64_t total = core::scheduled_sim_rounds(sim, plan);

  std::cout << "\nScheduled permutation of n=" << n << " (as " << plan.shape().rows << "x"
            << plan.shape().cols << "), all 32 rounds:\n";
  std::cout << "  " << std::left << std::setw(24) << "round" << std::setw(8) << "space"
            << std::setw(7) << "dir" << std::setw(15) << "class" << std::setw(8) << "stages"
            << "time\n";
  for (const auto& r : sim.stats().rounds) {
    std::cout << "  " << std::left << std::setw(24) << r.label << std::setw(8)
              << model::to_string(r.space) << std::setw(7) << model::to_string(r.dir)
              << std::setw(15) << model::to_string(r.observed) << std::setw(8) << r.stages
              << r.time << "\n";
  }
  std::cout << "  total: " << total << " time units (formula "
            << model::scheduled_time(n, mp) << ", lower bound "
            << model::lower_bound(n, mp) << ")\n"
            << "  every global round coalesced / shared round conflict-free: "
            << (sim.stats().declarations_hold() ? "yes" : "NO") << "\n";
  return 0;
}
