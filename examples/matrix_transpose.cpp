/// \file matrix_transpose.cpp
/// \brief Domain example: out-of-place matrix transpose — "one of the
///        important permutations ... frequently used in matrix
///        computation" (paper, Section I).
///
/// Demonstrates three routes to the same transpose and checks them
/// against each other:
///   1. the library's dedicated blocked-transpose kernel (Section V's
///      w x w diagonal-arrangement algorithm, host version),
///   2. the transpose *as an offline permutation* through a
///      ScheduledPlan (showing the general machinery subsumes it), and
///   3. the conventional scatter.
///
/// Run: ./matrix_transpose [--rows 1024] [--cols 1024]

#include <iostream>

#include "core/conventional.hpp"
#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "cpu/kernels.hpp"
#include "perm/distribution.hpp"
#include "perm/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  const std::uint64_t rows = cli.get_int("rows", 1024);
  const std::uint64_t cols = cli.get_int("cols", 1024);
  const std::uint64_t n = rows * cols;

  util::ThreadPool pool;
  util::aligned_vector<float> a(n), t_kernel(n), t_plan(n), t_scatter(n), s1(n), s2(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<float>(i % 977);

  // 1. Dedicated blocked transpose kernel.
  util::Stopwatch sw;
  cpu::transpose_blocked<float>(pool, a, t_kernel, rows, cols, /*tile=*/32);
  const double ms_kernel = sw.millis();

  // 2. The same transpose expressed as a general offline permutation.
  const perm::Permutation p = perm::transpose(rows, cols);
  const model::MachineParams machine = model::MachineParams::gtx680();
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, machine);
  sw.reset();
  core::scheduled_cpu<float>(pool, plan, a, t_plan, s1, s2);
  const double ms_plan = sw.millis();

  // 3. Conventional scatter.
  sw.reset();
  core::d_designated_cpu<float>(pool, a, t_scatter, p);
  const double ms_scatter = sw.millis();

  const bool agree = (t_kernel == t_plan) && (t_plan == t_scatter);
  std::cout << rows << "x" << cols << " float transpose\n"
            << "  blocked kernel      : " << util::format_ms(ms_kernel) << " ms\n"
            << "  scheduled plan      : " << util::format_ms(ms_plan) << " ms\n"
            << "  conventional scatter: " << util::format_ms(ms_scatter) << " ms\n"
            << "  all three agree     : " << (agree ? "yes" : "NO") << "\n";

  // Spot-check the mathematical definition on a few entries.
  bool spot_ok = true;
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(rows, 8); ++i) {
    for (std::uint64_t j = 0; j < std::min<std::uint64_t>(cols, 8); ++j) {
      spot_ok &= (t_kernel[j * rows + i] == a[i * cols + j]);
    }
  }
  std::cout << "  definition holds    : " << (spot_ok ? "yes" : "NO") << "\n";

  // The model's view: transpose as a permutation has maximal
  // distribution, so the conventional algorithm is at its worst here.
  std::cout << "  d_w(P)/n = "
            << static_cast<double>(perm::distribution(p, machine.width)) /
                   static_cast<double>(n)
            << " (1.0 = worst case for the conventional algorithm)\n";
  return agree && spot_ok ? 0 : 1;
}
