/// \file plan_persistence.cpp
/// \brief The offline workflow end-to-end: compile a plan, persist it
///        to disk, reload it in a "fresh process", and execute —
///        demonstrating that the expensive König-coloring phase is a
///        build-time artifact, not a runtime cost.
///
/// Run: ./plan_persistence [--n 256K] [--family random]
///      [--path /tmp/reorder.hmmplan]

#include <iostream>

#include "core/plan_io.hpp"
#include "core/scheduled.hpp"
#include "perm/generators.hpp"
#include "perm/io.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 256 << 10);
  const std::string family = cli.get("family", "random");
  const std::string path = cli.get("path", "/tmp/reorder.hmmplan");
  const std::string perm_path = path + ".perm";

  const model::MachineParams mp = model::MachineParams::gtx680();

  // ---- "build time": compile and persist -----------------------------
  {
    const perm::Permutation p = perm::by_name(family, n, 7);
    util::Stopwatch sw;
    const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);
    const double build_ms = sw.millis();
    sw.reset();
    const bool ok = core::save_plan_file(path, plan) && perm::save_file(perm_path, p);
    std::cout << "compiled plan in " << util::format_ms(build_ms) << " ms, persisted "
              << util::format_bytes(plan.schedule_bytes()) << " of schedules to " << path
              << " in " << util::format_ms(sw.millis()) << " ms: "
              << (ok ? "ok" : "FAILED") << "\n";
    if (!ok) return 1;
  }

  // ---- "run time": reload and execute --------------------------------
  util::Stopwatch sw;
  const auto plan = core::load_plan_file(path);
  const auto p = perm::load_file(perm_path);
  if (!plan || !p) {
    std::cerr << "reload failed\n";
    return 1;
  }
  std::cout << "reloaded plan + permutation in " << util::format_ms(sw.millis())
            << " ms (vs recompiling)\n";

  util::ThreadPool pool;
  util::aligned_vector<float> a(n), b(n), s1(n), s2(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<float>(i);
  sw.reset();
  core::scheduled_cpu<float>(pool, *plan, a, b, s1, s2);
  const double exec_ms = sw.millis();

  bool correct = true;
  for (std::uint64_t i = 0; i < n; ++i) correct &= (b[(*p)(i)] == a[i]);
  std::cout << "executed reloaded plan on " << n << " floats in " << util::format_ms(exec_ms)
            << " ms; correct: " << (correct ? "yes" : "NO") << "\n";

  std::remove(path.c_str());
  std::remove(perm_path.c_str());
  return correct ? 0 : 1;
}
