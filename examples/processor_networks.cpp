/// \file processor_networks.cpp
/// \brief Domain example: emulating processor-network communication by
///        offline permutation (paper Section I: "communication on
///        processor networks such as hypercubes, meshes, and so on can
///        be emulated by permutation").
///
/// Builds the communication permutations of classic topologies —
/// hypercube dimension exchanges, 2-D mesh/torus shifts, the
/// shuffle-exchange network — and runs the paper's cost analysis on
/// each. The punchline the model makes quantitative: *structured*
/// network traffic has minimal distribution (d_w = n/w..2n/w, the
/// conventional algorithm is optimal), while *general* routing (a
/// random destination per node) is the d_w ≈ n regime where the
/// scheduled algorithm earns its 2x.
///
/// Run: ./processor_networks [--n 64K]

#include <iostream>

#include "core/diagnose.hpp"
#include "perm/distribution.hpp"
#include "perm/generators.hpp"
#include "util/bits.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace hmm;

/// Torus shift on a rows x cols processor grid: every node sends to
/// (row + dr, col + dc) with wraparound.
perm::Permutation torus_shift(std::uint64_t rows, std::uint64_t cols, std::uint64_t dr,
                              std::uint64_t dc) {
  util::aligned_vector<std::uint32_t> map(rows * cols);
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t c = 0; c < cols; ++c) {
      const std::uint64_t tr = (r + dr) % rows;
      const std::uint64_t tc = (c + dc) % cols;
      map[r * cols + c] = static_cast<std::uint32_t>(tr * cols + tc);
    }
  }
  return perm::Permutation(std::move(map));
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 64 << 10);
  const model::MachineParams mp = model::MachineParams::gtx680();
  const std::uint64_t mesh = util::isqrt_exact(n);

  struct Net {
    std::string name;
    perm::Permutation p;
  };
  std::vector<Net> nets;
  const unsigned bits = util::log2_exact(n);
  nets.push_back({"hypercube dim 0 (i ^ 1)", perm::xor_mask(n, 1)});
  nets.push_back({"hypercube dim " + std::to_string(bits / 2),
                  perm::xor_mask(n, 1ull << (bits / 2))});
  nets.push_back({"hypercube dim " + std::to_string(bits - 1),
                  perm::xor_mask(n, 1ull << (bits - 1))});
  nets.push_back({"mesh row shift (east)", torus_shift(mesh, mesh, 0, 1)});
  nets.push_back({"mesh col shift (south)", torus_shift(mesh, mesh, 1, 0)});
  nets.push_back({"torus diagonal shift", torus_shift(mesh, mesh, 1, 1)});
  nets.push_back({"shuffle-exchange", perm::shuffle(n)});
  nets.push_back({"mesh transpose (corner turn)", perm::transpose(mesh, mesh)});
  nets.push_back({"general routing (random)", perm::by_name("random", n, 3)});

  std::cout << "Processor-network traffic as offline permutations, n = " << n
            << " nodes (mesh " << mesh << "x" << mesh << "), HMM w=" << mp.width
            << " l=" << mp.latency << "\n\n";

  util::Table table(
      {"network pattern", "d_w(P)/n", "conventional", "scheduled", "best strategy"});
  for (const auto& net : nets) {
    const core::Diagnosis d = core::diagnose(net.p, mp);
    table.add_row({net.name, util::format_double(d.dist_forward_ratio, 4),
                   util::format_count(std::min(d.time_d_designated, d.time_s_designated)),
                   d.plan_supported ? util::format_count(d.time_scheduled) : "n/a",
                   d.recommendation});
  }
  table.print(std::cout);

  std::cout << "\nStructured topologies (hypercube, mesh, torus, shuffle) generate\n"
               "minimal-distribution traffic — the 3-round conventional copy is already\n"
               "optimal for them. The corner turn (transpose) and general routing hit\n"
               "d_w ~= n, where the paper's scheduled algorithm wins ~2x.\n";
  return 0;
}
