/// \file quickstart.cpp
/// \brief 60-second tour of the library's public API:
///   1. pick a permutation,
///   2. build a ScheduledPlan once (offline),
///   3. execute it on any number of arrays (online), and
///   4. compare against the conventional algorithm on both backends.
///
/// Build & run:  ./quickstart [--n 1M]

#include <iostream>

#include "core/conventional.hpp"
#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "perm/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 1 << 20);

  // 1. The permutation to perform offline: here, FFT bit-reversal.
  const perm::Permutation p = perm::bit_reversal(n);

  // 2. Offline: compile the permutation into a conflict-free 3-pass
  //    plan for a GTX-680-like machine (w=32 banks, 8 SMs, 48KiB shared).
  const model::MachineParams machine = model::MachineParams::gtx680();
  util::Stopwatch sw;
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, machine);
  std::cout << "plan: n=" << n << " viewed as " << plan.shape().rows << "x"
            << plan.shape().cols << ", built in " << util::format_ms(sw.millis())
            << " ms, schedules " << util::format_bytes(plan.schedule_bytes())
            << ", fits shared for float: " << (plan.fits_shared(sizeof(float)) ? "yes" : "no")
            << "\n";

  // 3. Online: permute a data array. The plan is data-independent —
  //    reuse it for as many arrays as you like.
  util::aligned_vector<float> a(n), b(n), s1(n), s2(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<float>(i);

  util::ThreadPool pool;
  sw.reset();
  core::scheduled_cpu<float>(pool, plan, a, b, s1, s2);
  const double t_sched = sw.millis();

  // 4. The conventional baseline (b[p[i]] = a[i]) for comparison.
  util::aligned_vector<float> b2(n);
  sw.reset();
  core::d_designated_cpu<float>(pool, a, b2, p);
  const double t_conv = sw.millis();

  std::cout << "scheduled: " << util::format_ms(t_sched) << " ms, conventional: "
            << util::format_ms(t_conv) << " ms, results match: "
            << (b == b2 ? "yes" : "NO") << "\n";

  // Bonus: what the theoretical HMM machine says about both.
  sim::HmmSim sim(machine);
  const std::uint64_t units_sched = core::scheduled_sim_rounds(sim, plan);
  sim.reset();
  const std::uint64_t units_conv = core::d_designated_sim_rounds(sim, p);
  std::cout << "HMM model: scheduled " << units_sched << " units vs conventional "
            << units_conv << " units ("
            << util::format_double(static_cast<double>(units_conv) /
                                       static_cast<double>(units_sched),
                                   2)
            << "x in the paper's model)\n";
  return 0;
}
