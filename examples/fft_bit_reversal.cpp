/// \file fft_bit_reversal.cpp
/// \brief Domain example: the data-reordering stage of the FFT
///        (the paper's motivating application for bit-reversal).
///
/// An iterative radix-2 Cooley–Tukey FFT needs its input in
/// bit-reversed order. This example
///   1. runs a full FFT whose reorder stage uses the library
///      (scheduled plan), validated against a direct O(n^2) DFT,
///   2. times the reorder stage via the conventional scatter vs the
///      scheduled plan, and
///   3. shows that the plan is reused across every FFT invocation
///      (the offline setting: the permutation depends only on n).
///
/// Run: ./fft_bit_reversal [--n 1M] [--verify-n 1024]

#include <cmath>
#include <complex>
#include <iostream>
#include <numbers>

#include "core/conventional.hpp"
#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "perm/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace hmm;
using cplx = std::complex<double>;

/// Butterfly stages of the iterative FFT; expects bit-reversed input.
void fft_butterflies(std::vector<cplx>& x) {
  const std::uint64_t n = x.size();
  for (std::uint64_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * std::numbers::pi / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::uint64_t i = 0; i < n; i += len) {
      cplx w(1);
      for (std::uint64_t j = 0; j < len / 2; ++j) {
        const cplx u = x[i + j];
        const cplx v = x[i + j + len / 2] * w;
        x[i + j] = u + v;
        x[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

/// Full FFT: scheduled-plan reorder + butterflies. The plan and the
/// scratch buffers are caller-owned so repeated FFTs reuse them.
void fft(const core::ScheduledPlan& plan, util::ThreadPool& pool, std::vector<cplx>& x,
         util::aligned_vector<cplx>& tmp, util::aligned_vector<cplx>& s1,
         util::aligned_vector<cplx>& s2) {
  // The bit-reversal permutation is an involution, so "send i to
  // rev(i)" equals "fetch from rev(i)"; either direction works.
  core::scheduled_cpu<cplx>(pool, plan, {x.data(), x.size()}, tmp, s1, s2);
  std::copy(tmp.begin(), tmp.end(), x.begin());
  fft_butterflies(x);
}

/// O(n^2) reference DFT.
std::vector<cplx> dft(const std::vector<cplx>& x) {
  const std::uint64_t n = x.size();
  std::vector<cplx> out(n);
  for (std::uint64_t k = 0; k < n; ++k) {
    cplx acc(0);
    for (std::uint64_t t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * t) /
                         static_cast<double>(n);
      acc += x[t] * cplx(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 1 << 20);
  // Smallest size the GTX-680-shaped plan supports is 2*32^2 = 2048.
  const std::uint64_t verify_n = cli.get_int("verify-n", 2048);

  util::ThreadPool pool;
  const model::MachineParams machine = model::MachineParams::gtx680();

  // --- correctness: FFT (with library reorder) vs direct DFT ----------
  {
    const core::ScheduledPlan plan =
        core::ScheduledPlan::build(perm::bit_reversal(verify_n), machine);
    std::vector<cplx> x(verify_n);
    util::Xoshiro256 rng(2);
    for (auto& v : x) v = cplx(rng.uniform01() - 0.5, rng.uniform01() - 0.5);
    const std::vector<cplx> expected = dft(x);
    util::aligned_vector<cplx> tmp(verify_n), s1(verify_n), s2(verify_n);
    fft(plan, pool, x, tmp, s1, s2);
    double max_err = 0;
    for (std::uint64_t i = 0; i < verify_n; ++i) {
      max_err = std::max(max_err, std::abs(x[i] - expected[i]));
    }
    std::cout << "FFT vs DFT (n=" << verify_n << "): max |error| = " << max_err
              << (max_err < 1e-6 * verify_n ? "  [OK]" : "  [FAIL]") << "\n";
  }

  // --- reorder-stage timing at scale ----------------------------------
  const perm::Permutation rev = perm::bit_reversal(n);
  util::Stopwatch sw;
  const core::ScheduledPlan plan = core::ScheduledPlan::build(rev, machine);
  std::cout << "reorder plan for n=" << n << " built in " << util::format_ms(sw.millis())
            << " ms (amortized over every FFT of this size)\n";

  util::aligned_vector<cplx> a(n), b(n), s1(n), s2(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = cplx(static_cast<double>(i), 0);

  sw.reset();
  core::scheduled_cpu<cplx>(pool, plan, a, b, s1, s2);
  const double t_sched = sw.millis();
  util::aligned_vector<cplx> b2(n);
  sw.reset();
  core::d_designated_cpu<cplx>(pool, a, b2, rev);
  const double t_conv = sw.millis();

  std::cout << "bit-reversal reorder of " << n << " complex<double>: scheduled "
            << util::format_ms(t_sched) << " ms vs conventional " << util::format_ms(t_conv)
            << " ms; equal: " << (b == b2 ? "yes" : "NO") << "\n";
  return 0;
}
