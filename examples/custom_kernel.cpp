/// \file custom_kernel.cpp
/// \brief Using the library as a research substrate: write a NEW HMM
///        algorithm as an exec:: kernel and let the simulator audit it.
///
/// We implement array reversal (`b[n-1-i] = a[i]`) three ways and let
/// the machine report what each costs:
///  1. naive: coalesced read + "reversed write" — looks innocent, but
///     every warp's writes land in one address group in *reverse*
///     order... which the UMM still coalesces (one group per warp), so
///     it is fast — a little surprise the simulator makes precise;
///  2. byte-reversed indexing (bit-reversal) — a genuinely casual
///     pattern for contrast;
///  3. the scheduled plan for the same permutations.
///
/// Run: ./custom_kernel [--n 64K]

#include <iostream>

#include "core/plan.hpp"
#include "exec/paper_kernels.hpp"
#include "perm/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace hmm;

/// A hand-written kernel: b[n-1-i] = a[i].
template <class T>
std::uint64_t reverse_exec(exec::Machine& m, exec::GlobalArray<T> a, exec::GlobalArray<T> b,
                           std::uint64_t block_size) {
  struct Regs {
    T v{};
  };
  const std::uint64_t n = a.size;
  exec::Kernel<Regs> k("reverse");
  k.template read_global<T>(
       a, [](const exec::ThreadCtx& c, const Regs&) { return c.global_id(); },
       [](Regs& r, T v) { r.v = v; }, model::AccessClass::kCoalesced)
      .template write_global<T>(
          b, [n](const exec::ThreadCtx& c, const Regs&) { return n - 1 - c.global_id(); },
          [](const exec::ThreadCtx&, const Regs& r) { return r.v; },
          // We *declare* casual and let the simulator tell us the truth.
          model::AccessClass::kCasual);
  return m.launch(exec::LaunchConfig{n / block_size, block_size}, k);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 64 << 10);
  const model::MachineParams mp = model::MachineParams::gtx680();

  util::Table table({"kernel", "time units", "write round observed", "note"});

  // 1. Hand-written reversal kernel.
  {
    exec::Machine m(mp);
    util::aligned_vector<float> host(n);
    for (std::uint64_t i = 0; i < n; ++i) host[i] = static_cast<float>(i);
    auto a = m.alloc_global<float>(std::span<const float>{host.data(), n});
    auto b = m.alloc_global<float>(n);
    const std::uint64_t t = reverse_exec<float>(m, a, b, 1024);

    util::aligned_vector<float> out(n);
    m.read_back(b, std::span<float>{out.data(), n});
    bool ok = true;
    for (std::uint64_t i = 0; i < n; ++i) ok &= (out[n - 1 - i] == host[i]);
    const auto& wr = m.sim().stats().rounds.back();
    table.add_row({"reverse (custom)", util::format_count(t),
                   std::string(model::to_string(wr.observed)),
                   ok ? "correct; reversed warps still hit one group each"
                      : "WRONG RESULT"});
  }

  // 2. Bit-reversal through the conventional kernel: truly casual.
  const perm::Permutation rev = perm::bit_reversal(n);
  {
    exec::Machine m(mp);
    auto a = m.alloc_global<float>(n);
    auto b = m.alloc_global<float>(n);
    auto p = m.alloc_global<std::uint32_t>(rev.data());
    const std::uint64_t t = exec::d_designated_exec<float>(m, a, b, p, 1024);
    const auto& wr = m.sim().stats().rounds.back();
    table.add_row({"bit-reversal (conventional)", util::format_count(t),
                   std::string(model::to_string(wr.observed)),
                   "d_w(P) = n: every warp scatters across w groups"});
  }

  // 3. Bit-reversal through the scheduled plan: casualness eliminated.
  {
    exec::Machine m(mp);
    const core::ScheduledPlan plan = core::ScheduledPlan::build(rev, mp);
    auto a = m.alloc_global<float>(n);
    auto b = m.alloc_global<float>(n);
    const std::uint64_t t = exec::scheduled_exec<float>(m, a, b, plan);
    table.add_row({"bit-reversal (scheduled)", util::format_count(t), "all coalesced/cf",
                   "32 rounds, none casual"});
  }

  std::cout << "Custom kernels on the HMM (n = " << n << ", w=" << mp.width
            << ", l=" << mp.latency << ")\n";
  table.print(std::cout);
  std::cout << "\nLesson: the simulator *observes* each round's class, so you can write a\n"
               "kernel, declare conservatively, and read off the model truth — array\n"
               "reversal is coalesced-per-warp despite the reversed order, while\n"
               "bit-reversal genuinely scatters and wants the scheduled plan.\n";
  return 0;
}
