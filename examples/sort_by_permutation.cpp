/// \file sort_by_permutation.cpp
/// \brief Domain example: reorder heavy payloads by a *computed*
///        permutation — the classic offline-permutation use case
///        (think database column reordering or argsort-then-gather).
///
/// Sort records by key three ways and compare:
///  1. `std::sort` on (key, payload) pairs — moves the payload at every
///     comparison swap;
///  2. argsort the keys, then move each payload once via the
///     conventional gather;
///  3. argsort, compile the sorting permutation into a ScheduledPlan,
///     then move each payload once with the scheduled executor —
///     worthwhile when the same ordering is applied to many payload
///     columns (the plan and the argsort amortize).
///
/// Run: ./sort_by_permutation [--n 256K] [--columns 4]

#include <algorithm>
#include <iostream>
#include <numeric>

#include "core/conventional.hpp"
#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

/// A fat payload record (64 bytes — a cacheline per element).
struct Record {
  double fields[8];
  bool operator==(const Record& o) const {
    return std::equal(std::begin(fields), std::end(fields), std::begin(o.fields));
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 256 << 10);
  const std::uint64_t columns = cli.get_int("columns", 4);

  util::Xoshiro256 rng(11);
  std::vector<float> keys(n);
  for (auto& k : keys) k = static_cast<float>(rng.uniform01());
  util::aligned_vector<Record> payload(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    for (double& f : payload[i].fields) f = static_cast<double>(i);
  }

  util::ThreadPool pool;
  util::Stopwatch sw;

  // 1. Baseline: sort pairs, payload dragged through the comparator sort.
  std::vector<std::pair<float, Record>> pairs(n);
  for (std::uint64_t i = 0; i < n; ++i) pairs[i] = {keys[i], payload[i]};
  sw.reset();
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const auto& x, const auto& y) { return x.first < y.first; });
  const double ms_pairs = sw.millis();

  // 2/3. Argsort once: order[r] = index of the r-th smallest key, i.e.
  //      the permutation P with P(order[r]) = r sends sources to ranks.
  sw.reset();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t x, std::uint32_t y) { return keys[x] < keys[y]; });
  util::aligned_vector<std::uint32_t> rank(n);
  for (std::uint64_t r = 0; r < n; ++r) rank[order[r]] = static_cast<std::uint32_t>(r);
  const perm::Permutation p{std::move(rank)};
  const double ms_argsort = sw.millis();

  // 2. Conventional gather per payload column.
  util::aligned_vector<Record> out_conv(n);
  sw.reset();
  for (std::uint64_t c = 0; c < columns; ++c) {
    core::d_designated_cpu<Record>(pool, payload, out_conv, p);
  }
  const double ms_conv = sw.millis() / static_cast<double>(columns);

  // 3. Scheduled plan per payload column (plan built once).
  sw.reset();
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, model::MachineParams::gtx680());
  const double ms_plan = sw.millis();
  util::aligned_vector<Record> out_sched(n), scratch(n);
  sw.reset();
  for (std::uint64_t c = 0; c < columns; ++c) {
    core::scheduled_cpu_lean<Record>(pool, plan, payload, out_sched, scratch);
  }
  const double ms_sched = sw.millis() / static_cast<double>(columns);

  // Verify all three agree.
  bool ok = (out_conv == out_sched);
  for (std::uint64_t r = 0; r < n && ok; ++r) ok = (out_conv[r] == pairs[r].second);

  util::Table table({"method", "ms/column", "one-time cost", "notes"});
  table.add_row({"std::stable_sort on pairs", util::format_ms(ms_pairs), "-",
                 "payload moved O(n log n) times"});
  table.add_row({"argsort + conventional gather", util::format_ms(ms_conv),
                 util::format_ms(ms_argsort) + " (argsort)", "payload moved once"});
  table.add_row({"argsort + scheduled plan", util::format_ms(ms_sched),
                 util::format_ms(ms_argsort + ms_plan) + " (argsort+plan)",
                 "amortizes over columns"});
  std::cout << "Sorting " << n << " 64-byte records by key, " << columns
            << " payload columns\n";
  table.print(std::cout);
  std::cout << "all methods agree: " << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
