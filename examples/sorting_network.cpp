/// \file sorting_network.cpp
/// \brief Domain example: Batcher's bitonic sorting network, whose
///        stages interleave compare-exchange with *shuffle-family
///        permutations* (paper, Section I: "sorting networks such as
///        bitonic sorting also involve permutation in each stage").
///
/// Two implementations are checked against each other and std::sort:
///   1. the classic index-arithmetic bitonic sort, and
///   2. a "network" variant whose data movement between stages is
///      performed by the library's offline-permutation executors —
///      demonstrating plan reuse: each distinct stage permutation is
///      compiled once and reused across all data.
///
/// Run: ./sorting_network [--n 64K]

#include <algorithm>
#include <iostream>
#include <map>

#include "core/conventional.hpp"
#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "perm/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace hmm;

/// Classic in-place bitonic sort (ascending), n a power of two.
void bitonic_reference(std::vector<float>& v) {
  const std::uint64_t n = v.size();
  for (std::uint64_t k = 2; k <= n; k <<= 1) {
    for (std::uint64_t j = k >> 1; j > 0; j >>= 1) {
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t l = i ^ j;
        if (l > i) {
          const bool up = (i & k) == 0;
          if ((up && v[i] > v[l]) || (!up && v[i] < v[l])) std::swap(v[i], v[l]);
        }
      }
    }
  }
}

/// Network variant: every stage first *permutes* the array so each
/// compare-exchange partner pair becomes adjacent (a fixed, data-
/// independent permutation — exactly the offline setting), then does a
/// linear adjacent compare-exchange sweep, then permutes back.
///
/// The stage permutation for distance j pairs (i, i^j): sort indices by
/// (pair-id, position-in-pair). For j it is the "swap bit log2(j) to
/// bit 0" permutation — a shuffle relative of the paper's families.
perm::Permutation stage_permutation(std::uint64_t n, std::uint64_t j) {
  util::aligned_vector<std::uint32_t> map(n);
  const std::uint64_t bit = j;  // power of two
  for (std::uint64_t i = 0; i < n; ++i) {
    // Remove bit log2(j) from i, append it as the LSB.
    const std::uint64_t low = i & (bit - 1);
    const std::uint64_t high = (i >> 1) & ~(bit - 1);
    const std::uint64_t b = (i & bit) ? 1 : 0;
    // destination index: pair id in the high bits, partner bit last.
    map[i] = static_cast<std::uint32_t>(((high | low) << 1) | b);
  }
  return perm::Permutation(std::move(map));
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 64 << 10);

  util::ThreadPool pool;
  util::Xoshiro256 rng(3);
  std::vector<float> data(n);
  for (auto& v : data) v = static_cast<float>(rng.uniform01());

  // Reference results.
  std::vector<float> ref = data;
  util::Stopwatch sw;
  bitonic_reference(ref);
  const double ms_classic = sw.millis();
  std::vector<float> expected = data;
  std::sort(expected.begin(), expected.end());
  std::cout << "classic bitonic sort: " << util::format_ms(ms_classic) << " ms, correct: "
            << (ref == expected ? "yes" : "NO") << "\n";

  // Network variant with library-powered stage permutations.
  // Compile each distinct stage permutation once (there are log2(n)).
  std::map<std::uint64_t, perm::Permutation> stage_perm;
  std::map<std::uint64_t, perm::Permutation> stage_inv;
  sw.reset();
  for (std::uint64_t j = 1; j < n; j <<= 1) {
    auto p = stage_permutation(n, j);
    stage_inv.emplace(j, p.inverse());
    stage_perm.emplace(j, std::move(p));
  }
  std::cout << "compiled " << stage_perm.size() << " stage permutations in "
            << util::format_ms(sw.millis()) << " ms (reused across all stages/data)\n";

  util::aligned_vector<float> cur(data.begin(), data.end()), tmp(n);
  sw.reset();
  for (std::uint64_t k = 2; k <= n; k <<= 1) {
    for (std::uint64_t j = k >> 1; j > 0; j >>= 1) {
      const auto& p = stage_perm.at(j);
      const auto& pinv = stage_inv.at(j);
      // Gather partners adjacent, compare-exchange linearly, scatter back.
      core::s_designated_cpu<float>(pool, cur, tmp, pinv);
      for (std::uint64_t i = 0; i < n; i += 2) {
        // tmp[i], tmp[i+1] are partners (orig indices i0 < i0^j).
        const std::uint64_t orig = pinv(i);
        const bool up = (orig & k) == 0;
        if ((up && tmp[i] > tmp[i + 1]) || (!up && tmp[i] < tmp[i + 1])) {
          std::swap(tmp[i], tmp[i + 1]);
        }
      }
      core::s_designated_cpu<float>(pool, tmp, cur, p);
    }
  }
  const double ms_network = sw.millis();
  const bool ok = std::equal(cur.begin(), cur.end(), expected.begin());
  std::cout << "network bitonic sort (library permutations): " << util::format_ms(ms_network)
            << " ms, correct: " << (ok ? "yes" : "NO") << "\n";
  std::cout << "(the permuted variant trades arithmetic index math for data movement —\n"
            << " on the HMM each stage becomes two offline permutations + one coalesced\n"
            << " sweep, which is how sorting networks map onto the model.)\n";
  return ok ? 0 : 1;
}
