/// \file stencil_jacobi.cpp
/// \brief A non-permutation workload on the exec:: machine: 1-D
///        3-point Jacobi smoothing, the "hello world" of
///        memory-model analysis.
///
/// Each sweep reads x[i-1], x[i], x[i+1] and writes the average. The
/// neighbour reads are shifted streams — at most 2 address groups per
/// warp — so the simulator prices a sweep at ~4 coalesced rounds:
/// stencils are bandwidth-, not scatter-, bound, and need none of the
/// permutation machinery. The point of the example is that the
/// library's machine answers such questions *quantitatively* for any
/// kernel you write.
///
/// Run: ./stencil_jacobi [--n 64K] [--sweeps 5]

#include <cmath>
#include <iostream>
#include <vector>

#include "exec/kernel.hpp"
#include "model/cost.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace hmm;

/// One Jacobi sweep: y[i] = (x[i-1] + x[i] + x[i+1]) / 3 with clamped
/// boundaries. Returns time units.
std::uint64_t jacobi_sweep(exec::Machine& m, exec::GlobalArray<float> x,
                           exec::GlobalArray<float> y, std::uint64_t block) {
  const std::uint64_t n = x.size;
  struct Regs {
    float sum = 0;
    float count = 0;
  };
  exec::Kernel<Regs> k("jacobi");
  k.read_global<float>(
       x, [](const exec::ThreadCtx& c, const Regs&) { return c.global_id(); },
       [](Regs& r, float v) {
         r.sum = v;
         r.count = 1;
       },
       model::AccessClass::kCoalesced, "center")
      .read_global<float>(
          x,
          [](const exec::ThreadCtx& c, const Regs&) {
            const std::uint64_t i = c.global_id();
            return i >= 1 ? i - 1 : model::kNoAccess;
          },
          [](Regs& r, float v) {
            r.sum += v;
            r.count += 1;
          },
          model::AccessClass::kCasual, "left")
      .read_global<float>(
          x,
          [n](const exec::ThreadCtx& c, const Regs&) {
            const std::uint64_t i = c.global_id();
            return i + 1 < n ? i + 1 : model::kNoAccess;
          },
          [](Regs& r, float v) {
            r.sum += v;
            r.count += 1;
          },
          model::AccessClass::kCasual, "right")
      .write_global<float>(
          y, [](const exec::ThreadCtx& c, const Regs&) { return c.global_id(); },
          [](const exec::ThreadCtx&, const Regs& r) { return r.sum / r.count; },
          model::AccessClass::kCoalesced, "write");
  return m.launch(exec::LaunchConfig{n / block, block}, k);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 64 << 10);
  const std::uint64_t sweeps = cli.get_int("sweeps", 5);
  const model::MachineParams mp = model::MachineParams::gtx680();

  // Host reference for correctness.
  std::vector<float> ref(n);
  for (std::uint64_t i = 0; i < n; ++i) ref[i] = static_cast<float>((i * 2654435761u) % 1000);

  exec::Machine m(mp);
  auto x = m.alloc_global<float>(std::span<const float>{ref.data(), n});
  auto y = m.alloc_global<float>(n);

  std::uint64_t total = 0;
  for (std::uint64_t s = 0; s < sweeps; ++s) {
    total += jacobi_sweep(m, x, y, 1024);
    std::swap(x, y);
    // Host reference sweep.
    std::vector<float> next(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      float sum = ref[i];
      float cnt = 1;
      if (i >= 1) {
        sum += ref[i - 1];
        cnt += 1;
      }
      if (i + 1 < n) {
        sum += ref[i + 1];
        cnt += 1;
      }
      next[i] = sum / cnt;
    }
    ref = std::move(next);
  }

  std::vector<float> got(n);
  m.read_back(x, std::span<float>{got.data(), n});
  float max_err = 0;
  for (std::uint64_t i = 0; i < n; ++i) max_err = std::max(max_err, std::abs(got[i] - ref[i]));

  const std::uint64_t per_sweep = total / sweeps;
  const std::uint64_t coalesced = model::coalesced_round_time(n, mp);
  std::cout << "1-D Jacobi on the simulated HMM: n = " << n << ", " << sweeps
            << " sweeps\n"
            << "  max |err| vs host reference: " << max_err
            << (max_err < 1e-4f ? "  [OK]\n" : "  [FAIL]\n")
            << "  time per sweep: " << per_sweep << " units ("
            << util::format_double(static_cast<double>(per_sweep) /
                                       static_cast<double>(coalesced),
                                   2)
            << "x one coalesced round; the shifted reads cost ~1 extra group per warp)\n"
            << "  verdict: stencils are stream-bound — no permutation machinery needed,\n"
            << "  and the simulator proves it per kernel rather than by folklore.\n";
  return max_err < 1e-4f ? 0 : 1;
}
