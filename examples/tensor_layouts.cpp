/// \file tensor_layouts.cpp
/// \brief Domain example: tensor/record layout conversions as offline
///        permutations — HWC -> CHW (the ML image-layout change) and
///        AoS <-> SoA (the vectorization-enabling record shuffle).
///
/// Both are fixed, data-independent permutations known at build time —
/// the offline setting — and both are *high-distribution* (strided)
/// patterns where the conventional copy is at its worst, which is why
/// layout conversion kernels are notorious. The example diagnoses each
/// with the paper's cost theory and times the host backends.
///
/// Run: ./tensor_layouts [--h 256] [--w 256] [--c 4] [--ways 8]

#include <iostream>

#include "core/conventional.hpp"
#include "core/diagnose.hpp"
#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "perm/generators.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hmm;

struct CaseResult {
  std::string name;
  double conv_ms;
  double sched_ms;
  double dist_ratio;
  std::string recommendation;
};

CaseResult run_case(const std::string& name, const perm::Permutation& p,
                    util::ThreadPool& pool) {
  const std::uint64_t n = p.size();
  const model::MachineParams mp = model::MachineParams::gtx680();
  const core::Diagnosis diag = core::diagnose(p, mp);

  util::aligned_vector<float> a(n), b(n), scratch(n);
  for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<float>(i);

  util::Stopwatch sw;
  core::d_designated_cpu<float>(pool, a, b, p);
  const double conv_ms = sw.millis();

  double sched_ms = -1;
  if (diag.plan_supported) {
    const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);
    sw.reset();
    core::scheduled_cpu_lean<float>(pool, plan, a, b, scratch);
    sched_ms = sw.millis();
  }
  return CaseResult{name, conv_ms, sched_ms, diag.dist_forward_ratio, diag.recommendation};
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::uint64_t h = cli.get_int("h", 256);
  const std::uint64_t w = cli.get_int("w", 256);
  const std::uint64_t c = cli.get_int("c", 4);
  const std::uint64_t ways = cli.get_int("ways", 8);
  const std::uint64_t n = h * w * c;

  util::ThreadPool pool;
  std::vector<CaseResult> results;
  results.push_back(run_case("HWC -> CHW (image to planar)",
                             perm::tensor_axes({h, w, c}, {2, 0, 1}), pool));
  results.push_back(run_case("CHW -> HWC (planar to image)",
                             perm::tensor_axes({c, h, w}, {1, 2, 0}), pool));
  results.push_back(
      run_case("AoS -> SoA (deinterleave x" + std::to_string(ways) + ")",
               perm::deinterleave(n, ways), pool));
  results.push_back(run_case("SoA -> AoS (interleave x" + std::to_string(ways) + ")",
                             perm::interleave(n, ways), pool));
  results.push_back(run_case("depth rotate (axes {1,2,0})",
                             perm::tensor_axes({h, w, c}, {1, 2, 0}), pool));
  // High-channel contrast: once the inner dimension reaches the machine
  // width, the conversion becomes a full scatter (d_w -> 1).
  results.push_back(run_case("HWC -> CHW with C=64",
                             perm::tensor_axes({64, 64, 64}, {2, 0, 1}), pool));
  results.push_back(run_case("AoS -> SoA (deinterleave x64)",
                             perm::deinterleave(1 << 18, 64), pool));

  std::cout << "Layout conversions of a " << h << "x" << w << "x" << c << " tensor ("
            << n << " floats) as offline permutations\n\n";
  util::Table table({"conversion", "d_w(P)/n", "conventional ms", "scheduled ms",
                     "model recommends"});
  for (const auto& r : results) {
    table.add_row({r.name, util::format_double(r.dist_ratio, 3),
                   util::format_ms(r.conv_ms),
                   r.sched_ms < 0 ? "n/a (size)" : util::format_ms(r.sched_ms),
                   r.recommendation});
  }
  table.print(std::cout);
  std::cout << "\nThe cost theory quantifies layout folklore: a channel conversion's\n"
               "distribution is d_w = min(C, w)/w of n — gentle for a few channels\n"
               "(each warp scatters to only C regions), a full Table II-transpose\n"
               "scatter once C or the interleave factor reaches the width w, which is\n"
               "exactly where the model starts recommending the scheduled plan.\n";
  return 0;
}
